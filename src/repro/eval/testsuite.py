"""The regression test-suite generator.

The paper validates its backend against LEAN's 648-test suite.  We generate a
large family of small mini-LEAN programs, each exercising a distinct language
feature or corner case; the differential test (``tests/test_differential.py``)
runs every program through the reference interpreter, the baseline backend
and the lp+rgn backend (all three Figure-10 variants) and requires identical
results plus a balanced heap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

_LIST_PRELUDE = """
inductive List where
| nil
| cons (head : Nat) (tail : List)
"""

_TREE_PRELUDE = """
inductive Tree where
| leaf
| node (value : Nat) (left : Tree) (right : Tree)
"""

_PAIR_PRELUDE = """
inductive Pair where
| mk (first : Nat) (second : Nat)
"""

_OPTION_PRELUDE = """
inductive Option where
| none
| some (value : Nat)
"""


@dataclass(frozen=True)
class TestProgram:
    """One regression program with its human-readable category."""

    name: str
    category: str
    source: str


def _simple(name: str, category: str, body: str, prelude: str = "") -> TestProgram:
    return TestProgram(name, category, f"{prelude}\ndef main : Nat := {body}\n")


def regression_programs() -> List[TestProgram]:
    """Generate the full regression suite."""
    programs: List[TestProgram] = []

    # -- arithmetic and literals -------------------------------------------------
    arithmetic_cases = [
        ("add", "1 + 2 + 3"),
        ("mul", "6 * 7"),
        ("sub_floor", "3 - 5"),
        ("div", "100 / 7"),
        ("mod", "100 % 7"),
        ("precedence", "2 + 3 * 4"),
        ("nested_parens", "(2 + 3) * (4 + 5)"),
        ("zero", "0"),
        ("large_literal", "123456789 * 987654321"),
        ("bigint_literal", "9999999999999999999 % 1000003"),
        ("deep_expression", "1 + (2 + (3 + (4 + (5 + (6 + (7 + 8))))))"),
    ]
    for name, body in arithmetic_cases:
        programs.append(_simple(f"arith_{name}", "arithmetic", body))

    # -- booleans and comparisons -------------------------------------------------
    bool_cases = [
        ("if_true", "if 1 < 2 then 10 else 20"),
        ("if_false", "if 2 < 1 then 10 else 20"),
        ("eq", "if 5 == 5 then 1 else 0"),
        ("ne", "if 5 != 5 then 1 else 0"),
        ("le_ge", "if 3 <= 3 then (if 4 >= 5 then 0 else 2) else 9"),
        ("and_short_circuit", "if 1 < 2 && 3 < 4 then 7 else 8"),
        ("or_short_circuit", "if 2 < 1 || 3 < 4 then 7 else 8"),
        ("nested_if", "if 1 < 2 then (if 2 < 3 then 11 else 12) else 13"),
        ("bool_literal", "if true then (if false then 1 else 2) else 3"),
    ]
    for name, body in bool_cases:
        programs.append(_simple(f"bool_{name}", "booleans", body))

    # -- let bindings -----------------------------------------------------------------
    let_cases = [
        ("basic", "let x := 5; x + x"),
        ("shadowing", "let x := 1; let x := x + 1; x * 10"),
        ("dead_binding", "let unused := 1000; 3"),
        ("chained", "let a := 1; let b := a + 1; let c := b + 1; a + b + c"),
        ("let_in_operand", "(let a := 4; a + 1) * 2"),
    ]
    for name, body in let_cases:
        programs.append(_simple(f"let_{name}", "let", body))

    # -- named functions / recursion -----------------------------------------------------
    programs.append(
        TestProgram(
            "fn_fib",
            "recursion",
            """
def fib (n : Nat) : Nat :=
  if n < 2 then n else fib (n - 1) + fib (n - 2)
def main : Nat := fib 12
""",
        )
    )
    programs.append(
        TestProgram(
            "fn_mutual_arity",
            "recursion",
            """
def isEven (n : Nat) : Bool := if n == 0 then true else isOdd (n - 1)
def isOdd (n : Nat) : Bool := if n == 0 then false else isEven (n - 1)
def main : Nat := if isEven 20 then 1 else 0
""",
        )
    )
    programs.append(
        TestProgram(
            "fn_accumulator",
            "recursion",
            """
def sumAcc (n : Nat) (acc : Nat) : Nat :=
  if n == 0 then acc else sumAcc (n - 1) (acc + n)
def main : Nat := sumAcc 50 0
""",
        )
    )
    programs.append(
        TestProgram(
            "fn_ackermann_small",
            "recursion",
            """
def ack (m : Nat) (n : Nat) : Nat :=
  if m == 0 then n + 1
  else (if n == 0 then ack (m - 1) 1 else ack (m - 1) (ack m (n - 1)))
def main : Nat := ack 2 3
""",
        )
    )

    # -- data constructors and pattern matching -------------------------------------------
    programs.append(
        TestProgram(
            "match_list_length",
            "pattern-matching",
            _LIST_PRELUDE
            + """
def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons _ t => 1 + length t
def main : Nat := length (List.cons 1 (List.cons 2 (List.cons 3 List.nil)))
""",
        )
    )
    programs.append(
        TestProgram(
            "match_list_sum_map",
            "pattern-matching",
            _LIST_PRELUDE
            + """
def mapAdd (k : Nat) (xs : List) : List :=
  match xs with
  | List.nil => List.nil
  | List.cons h t => List.cons (h + k) (mapAdd k t)
def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def main : Nat := sum (mapAdd 3 (upto 10))
""",
        )
    )
    programs.append(
        TestProgram(
            "match_nested_patterns",
            "pattern-matching",
            _LIST_PRELUDE
            + """
def secondOrZero (xs : List) : Nat :=
  match xs with
  | List.cons _ (List.cons s _) => s
  | List.cons only List.nil => only
  | List.nil => 0
def main : Nat :=
  secondOrZero (List.cons 7 (List.cons 9 List.nil)) +
  secondOrZero (List.cons 5 List.nil) + secondOrZero List.nil
""",
        )
    )
    programs.append(
        TestProgram(
            "match_multi_scrutinee",
            "pattern-matching",
            """
def eval (x : Nat) (y : Nat) (z : Nat) : Nat :=
  match x, y, z with
  | 0, 2, _ => 40
  | 0, _, 2 => 50
  | _, _, _ => 60
def main : Nat := eval 0 2 9 + eval 0 1 2 + eval 1 2 2
""",
        )
    )
    programs.append(
        TestProgram(
            "match_literal_patterns",
            "pattern-matching",
            """
def intUsage (n : Nat) : Nat :=
  match n with
  | 42 => 43
  | _ => 99999999
def main : Nat := intUsage 42 + intUsage 7 % 1000
""",
        )
    )
    programs.append(
        TestProgram(
            "match_tree_fold",
            "pattern-matching",
            _TREE_PRELUDE
            + """
def build (d : Nat) : Tree :=
  if d == 0 then Tree.leaf else Tree.node d (build (d - 1)) (build (d - 1))
def sumTree (t : Tree) : Nat :=
  match t with
  | Tree.leaf => 0
  | Tree.node v l r => v + sumTree l + sumTree r
def main : Nat := sumTree (build 5)
""",
        )
    )
    programs.append(
        TestProgram(
            "match_pair_projections",
            "pattern-matching",
            _PAIR_PRELUDE
            + """
def swap (p : Pair) : Pair :=
  match p with
  | Pair.mk a b => Pair.mk b a
def addPair (p : Pair) : Nat :=
  match p with
  | Pair.mk a b => a + 2 * b
def main : Nat := addPair (swap (Pair.mk 3 10))
""",
        )
    )
    programs.append(
        TestProgram(
            "match_option_chain",
            "pattern-matching",
            _OPTION_PRELUDE
            + """
def orElse (o : Option) (d : Nat) : Nat :=
  match o with
  | Option.none => d
  | Option.some v => v
def half (n : Nat) : Option :=
  if n % 2 == 0 then Option.some (n / 2) else Option.none
def main : Nat := orElse (half 10) 100 + orElse (half 7) 100
""",
        )
    )
    programs.append(
        TestProgram(
            "match_bool_patterns",
            "pattern-matching",
            """
def toNat (b : Bool) : Nat :=
  match b with
  | true => 1
  | false => 0
def main : Nat := toNat (3 < 5) * 10 + toNat (5 < 3)
""",
        )
    )

    # -- closures and higher-order functions ------------------------------------------------
    programs.append(
        TestProgram(
            "closure_partial_application",
            "closures",
            """
def k (x : Nat) (y : Nat) : Nat := x
def ap42 (f : Nat -> Nat -> Nat) : Nat -> Nat := f 42
def main : Nat :=
  let k10 := k 10;
  let k42 := ap42 k;
  k10 5 + k42 7
""",
        )
    )
    programs.append(
        TestProgram(
            "closure_lambda_capture",
            "closures",
            """
def applyTwice (f : Nat -> Nat) (x : Nat) : Nat := f (f x)
def main : Nat :=
  let k := 3;
  applyTwice (fun (x : Nat) => x * k) 2
""",
        )
    )
    programs.append(
        TestProgram(
            "closure_compose",
            "closures",
            """
def compose (f : Nat -> Nat) (g : Nat -> Nat) (x : Nat) : Nat := f (g x)
def inc (x : Nat) : Nat := x + 1
def double (x : Nat) : Nat := x * 2
def main : Nat := compose inc double 10 + compose double inc 10
""",
        )
    )
    programs.append(
        TestProgram(
            "closure_over_application",
            "closures",
            """
def const2 (x : Nat) (y : Nat) : Nat -> Nat := fun (z : Nat) => x + y + z
def main : Nat := const2 1 2 3
""",
        )
    )
    programs.append(
        TestProgram(
            "closure_fold",
            "closures",
            _LIST_PRELUDE
            + """
def foldl (f : Nat -> Nat -> Nat) (acc : Nat) (xs : List) : Nat :=
  match xs with
  | List.nil => acc
  | List.cons h t => foldl f (f acc h) t
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def main : Nat := foldl (fun (a : Nat) (b : Nat) => a + b) 0 (upto 20)
""",
        )
    )
    programs.append(
        TestProgram(
            "closure_filter_predicates",
            "closures",
            _LIST_PRELUDE
            + """
def filter (p : Nat -> Bool) (xs : List) : List :=
  match xs with
  | List.nil => List.nil
  | List.cons h t => if p h then List.cons h (filter p t) else filter p t
def count (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons _ t => 1 + count t
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def main : Nat :=
  let xs := upto 30;
  count (filter (fun (v : Nat) => v % 2 == 0) xs) * 100 +
  count (filter (fun (v : Nat) => v % 3 == 0) xs)
""",
        )
    )

    # -- Int arithmetic ------------------------------------------------------------------------
    programs.append(
        TestProgram(
            "int_negative",
            "integers",
            """
def main : Nat :=
  let a : Int := -5;
  let b : Int := 3;
  Int.toNat (b - a)
""",
        )
    )
    programs.append(
        TestProgram(
            "int_mixed_ops",
            "integers",
            """
def f (x : Int) : Int := x * x - 2 * x + 1
def main : Nat := Int.toNat (f 7 + f (-3))
""",
        )
    )

    # -- arrays -----------------------------------------------------------------------------------
    programs.append(
        TestProgram(
            "array_push_get",
            "arrays",
            """
def build (i : Nat) (n : Nat) (a : Array Nat) : Array Nat :=
  if i == n then a else build (i + 1) n (Array.push a (i * i))
def sumGo (a : Array Nat) (i : Nat) (acc : Nat) : Nat :=
  if i == Array.size a then acc else sumGo a (i + 1) (acc + Array.get a i)
def main : Nat := sumGo (build 0 12 Array.empty) 0 0
""",
        )
    )
    programs.append(
        TestProgram(
            "array_set_swap",
            "arrays",
            """
def build (i : Nat) (n : Nat) (a : Array Nat) : Array Nat :=
  if i == n then a else build (i + 1) n (Array.push a i)
def main : Nat :=
  let a := build 0 10 Array.empty;
  let a := Array.set a 0 99;
  let a := Array.swap a 0 9;
  Array.get a 9 * 10 + Array.get a 0
""",
        )
    )

    # -- programs from the paper's figures --------------------------------------------------------
    programs.append(
        TestProgram(
            "paper_fig4_intUsage",
            "paper-figures",
            """
def intUsage (n : Nat) : Nat :=
  match n with
  | 42 => 43
  | _ => 99999999
def main : Nat := intUsage 42
""",
        )
    )
    programs.append(
        TestProgram(
            "paper_fig5_eval",
            "paper-figures",
            """
def eval (x : Nat) (y : Nat) (z : Nat) : Nat :=
  match x, y, z with
  | 0, 2, _ => 40
  | 0, _, 2 => 50
  | _, _, _ => 60
def main : Nat := eval 0 2 1 + eval 0 3 2 + eval 9 9 9
""",
        )
    )
    programs.append(
        TestProgram(
            "paper_fig6_singleton_length",
            "paper-figures",
            _LIST_PRELUDE
            + """
def singleton (n : Nat) : List := List.cons n List.nil
def length (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons _ l => 1 + length l
def main : Nat := length (singleton 42)
""",
        )
    )
    programs.append(
        TestProgram(
            "paper_fig7_closures",
            "paper-figures",
            """
def k (x : Nat) (y : Nat) : Nat := x
def k10 : Nat -> Nat := k 10
def ap42 (f : Nat -> Nat -> Nat) : Nat -> Nat := f 42
def k42 : Nat -> Nat := ap42 k
def main : Nat := k10 1 + k42 2
""",
        )
    )
    programs.append(
        TestProgram(
            "paper_fig1_case_true",
            "paper-figures",
            """
def caseOfTrue : Nat := if true then 3 else 5
def commonBranch (b : Bool) : Nat := if b then 7 else 7
def main : Nat := caseOfTrue + commonBranch (1 < 2) + commonBranch (2 < 1)
""",
        )
    )

    # -- stress / combination programs -------------------------------------------------------------
    programs.append(
        TestProgram(
            "combo_tree_of_lists",
            "combination",
            _LIST_PRELUDE
            + _TREE_PRELUDE
            + """
def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))
def sumList (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sumList t
def build (d : Nat) : Tree :=
  if d == 0 then Tree.leaf
  else Tree.node (sumList (upto d)) (build (d - 1)) (build (d - 1))
def sumTree (t : Tree) : Nat :=
  match t with
  | Tree.leaf => 0
  | Tree.node v l r => v + sumTree l + sumTree r
def main : Nat := sumTree (build 4)
""",
        )
    )
    programs.append(
        TestProgram(
            "combo_church_like",
            "combination",
            """
def iterate (f : Nat -> Nat) (n : Nat) (x : Nat) : Nat :=
  if n == 0 then x else iterate f (n - 1) (f x)
def main : Nat := iterate (fun (v : Nat) => v * 2 + 1) 10 0
""",
        )
    )
    programs.append(
        TestProgram(
            "combo_deep_join_points",
            "combination",
            """
def classify (a : Nat) (b : Nat) (c : Nat) (d : Nat) : Nat :=
  match a, b, c, d with
  | 0, 0, 0, 0 => 1
  | 0, 0, _, _ => 2
  | 0, _, 0, _ => 3
  | _, 0, 0, _ => 4
  | _, _, _, 0 => 5
  | _, _, _, _ => 6
def sweep (n : Nat) (acc : Nat) : Nat :=
  if n == 0 then acc
  else sweep (n - 1) (acc + classify (n % 2) (n % 3) (n % 5) (n % 7))
def main : Nat := sweep 30 0
""",
        )
    )

    return programs


def programs_by_category() -> Dict[str, List[TestProgram]]:
    """Group the regression programs by category."""
    grouped: Dict[str, List[TestProgram]] = {}
    for program in regression_programs():
        grouped.setdefault(program.category, []).append(program)
    return grouped
