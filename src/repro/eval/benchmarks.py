"""The benchmark programs of the paper's evaluation (§V-B), ported to
mini-LEAN.

The LEAN benchmark suite workloads used by Figures 9 and 10:

* ``binarytrees`` / ``binarytrees-int`` — purely functional binary tree
  build / checksum / deallocate,
* ``const_fold`` — constant folding over an expression language,
* ``deriv`` — symbolic differentiation of expression trees,
* ``digits`` — digit statistics over pair-state iteration (not from the
  paper's suite; added to exercise Lean's tuple-destructuring desugaring,
  i.e. case-of-known-constructor, on a realistic numeric workload),
* ``filter`` — filtering a linked list with a (higher-order) predicate,
* ``qsort`` — in-place quicksort over LEAN arrays,
* ``rbmap_checkpoint`` — red-black tree insertion and lookup,
* ``unionfind`` — Tarjan's union-find over arrays.

Problem sizes are laptop-scale (the interpreters are written in Python), but
each program exercises the same code paths — data constructors, nested
pattern matching, join points, closures, arrays and reference counting — as
the original suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program: its name, source and expected result."""

    name: str
    source: str
    description: str
    expected: int


def _binarytrees(depth: int) -> str:
    return f"""
inductive Tree where
| leaf
| node (left : Tree) (right : Tree)

def mkTree (d : Nat) : Tree :=
  if d == 0 then Tree.leaf
  else Tree.node (mkTree (d - 1)) (mkTree (d - 1))

def checkTree (t : Tree) : Nat :=
  match t with
  | Tree.leaf => 1
  | Tree.node l r => 1 + checkTree l + checkTree r

def sweep (iters : Nat) (d : Nat) (acc : Nat) : Nat :=
  if iters == 0 then acc
  else sweep (iters - 1) d (acc + checkTree (mkTree d))

def main : Nat :=
  let deep := checkTree (mkTree {depth});
  deep + sweep 4 {max(depth - 2, 1)} 0
"""


def _binarytrees_int(depth: int) -> str:
    return f"""
inductive Tree where
| leaf
| node (value : Nat) (left : Tree) (right : Tree)

def mkTree (v : Nat) (d : Nat) : Tree :=
  if d == 0 then Tree.leaf
  else Tree.node v (mkTree (2 * v) (d - 1)) (mkTree (2 * v + 1) (d - 1))

def checkTree (t : Tree) : Nat :=
  match t with
  | Tree.leaf => 1
  | Tree.node v l r => v + checkTree l + checkTree r

def sweep (iters : Nat) (d : Nat) (acc : Nat) : Nat :=
  if iters == 0 then acc
  else sweep (iters - 1) d (acc + checkTree (mkTree iters d))

def main : Nat :=
  let deep := checkTree (mkTree 1 {depth});
  deep + sweep 4 {max(depth - 2, 1)} 0
"""


def _const_fold(depth: int, reps: int) -> str:
    return f"""
inductive Expr where
| num (value : Nat)
| var
| add (lhs : Expr) (rhs : Expr)
| mul (lhs : Expr) (rhs : Expr)

def mkExpr (n : Nat) (v : Nat) : Expr :=
  if n == 0 then (if v == 0 then Expr.var else Expr.num v)
  else Expr.add (mkExpr (n - 1) (v + 1)) (mkExpr (n - 1) (v % 2))

def appendAdd (e1 : Expr) (e2 : Expr) : Expr := Expr.add e1 e2

def constFold (e : Expr) : Expr :=
  match e with
  | Expr.num v => Expr.num v
  | Expr.var => Expr.var
  | Expr.add l r =>
      (match constFold l, constFold r with
       | Expr.num a, Expr.num b => Expr.num (a + b)
       | a, b => Expr.add a b)
  | Expr.mul l r =>
      (match constFold l, constFold r with
       | Expr.num a, Expr.num b => Expr.num (a * b)
       | a, b => Expr.mul a b)

def evalExpr (x : Nat) (e : Expr) : Nat :=
  match e with
  | Expr.num v => v
  | Expr.var => x
  | Expr.add l r => evalExpr x l + evalExpr x r
  | Expr.mul l r => evalExpr x l * evalExpr x r

def loop (n : Nat) (acc : Nat) : Nat :=
  if n == 0 then acc
  else loop (n - 1) (acc + evalExpr 2 (constFold (mkExpr {depth} (n % 3))))

def main : Nat := loop {reps} 0
"""


def _deriv(reps: int) -> str:
    return f"""
inductive Expr where
| num (value : Nat)
| x
| add (lhs : Expr) (rhs : Expr)
| mul (lhs : Expr) (rhs : Expr)

def mkAdd (a : Expr) (b : Expr) : Expr :=
  match a, b with
  | Expr.num 0, e => e
  | e, Expr.num 0 => e
  | e1, e2 => Expr.add e1 e2

def mkMul (a : Expr) (b : Expr) : Expr :=
  match a, b with
  | Expr.num 0, _ => Expr.num 0
  | _, Expr.num 0 => Expr.num 0
  | Expr.num 1, e => e
  | e, Expr.num 1 => e
  | e1, e2 => Expr.mul e1 e2

def deriv (e : Expr) : Expr :=
  match e with
  | Expr.num _ => Expr.num 0
  | Expr.x => Expr.num 1
  | Expr.add l r => mkAdd (deriv l) (deriv r)
  | Expr.mul l r => mkAdd (mkMul l (deriv r)) (mkMul (deriv l) r)

def evalExpr (v : Nat) (e : Expr) : Nat :=
  match e with
  | Expr.num n => n
  | Expr.x => v
  | Expr.add l r => evalExpr v l + evalExpr v r
  | Expr.mul l r => evalExpr v l * evalExpr v r

def pow (n : Nat) : Expr :=
  if n == 0 then Expr.num 1
  else Expr.mul Expr.x (pow (n - 1))

def nthDeriv (n : Nat) (e : Expr) : Expr :=
  if n == 0 then e else nthDeriv (n - 1) (deriv e)

def loop (n : Nat) (acc : Nat) : Nat :=
  if n == 0 then acc
  else loop (n - 1) (acc + evalExpr 2 (nthDeriv 3 (pow (4 + n % 3))))

def main : Nat := loop {reps} 0
"""


def _filter(length: int) -> str:
    return f"""
inductive List where
| nil
| cons (head : Nat) (tail : List)

def upto (n : Nat) : List :=
  if n == 0 then List.nil else List.cons n (upto (n - 1))

def filter (p : Nat -> Bool) (xs : List) : List :=
  match xs with
  | List.nil => List.nil
  | List.cons h t => if p h then List.cons h (filter p t) else filter p t

def sum (xs : List) : Nat :=
  match xs with
  | List.nil => 0
  | List.cons h t => h + sum t

def main : Nat :=
  let xs := upto {length};
  let evens := filter (fun (v : Nat) => v % 2 == 0) xs;
  let small := filter (fun (v : Nat) => v < {length // 2}) evens;
  sum small + sum (filter (fun (v : Nat) => v % 3 == 0) xs)
"""


def _digits(reps: int, span: int) -> str:
    """Digit statistics with Lean-style tuple destructuring.

    Ports the ``let (q, r) := (n / 10, n % 10)`` idiom: mini-LEAN has no
    tuple-let patterns, so (exactly like Lean's desugaring) the destructuring
    is a ``match`` on a freshly constructed pair.  That makes this the
    suite's workload for the case-of-known-constructor canonicalisation:
    every destructuring site is an ``lp.getlabel`` of a direct
    ``lp.construct``.
    """
    return f"""
inductive Pair where
| mk (fst : Nat) (snd : Nat)

def digitStep (fuel : Nat) (n : Nat) (acc : Nat) : Nat :=
  if fuel == 0 then acc
  else if n == 0 then acc
  else match Pair.mk (n / 10) (n % 10) with
  | Pair.mk q r => digitStep (fuel - 1) q (acc + r)

def digitSum (n : Nat) : Nat := digitStep 32 n 0

def fibSwap (p : Pair) : Pair :=
  match p with
  | Pair.mk a b => Pair.mk b ((a + b) % 1000003)

def fibPair (n : Nat) (p : Pair) : Pair :=
  if n == 0 then p else fibPair (n - 1) (fibSwap p)

def fibDigits (n : Nat) : Nat :=
  match fibPair n (Pair.mk 0 1) with
  | Pair.mk a b => digitSum a

def loop (i : Nat) (acc : Nat) : Nat :=
  if i == 0 then acc
  else loop (i - 1) (acc + fibDigits (i + {span}) + digitSum (i * 2654435761))

def main : Nat := loop {reps} 0
"""


def _qsort_simple(size: int) -> str:
    """In-place quicksort on LEAN arrays (Lomuto partition)."""
    return f"""
def fill (i : Nat) (n : Nat) (seed : Nat) (a : Array Nat) : Array Nat :=
  if i == n then a
  else fill (i + 1) n ((seed * 1103515245 + 12345) % 2147483648)
       (Array.push a (seed % 1000))

def partitionGo (a : Array Nat) (pivot : Nat) (i : Nat) (j : Nat) (hi : Nat) : Array Nat :=
  if j == hi then Array.push (Array.swap a i hi) i
  else
    if Array.get a j <= pivot
    then partitionGo (Array.swap a i j) pivot (i + 1) (j + 1) hi
    else partitionGo a pivot i (j + 1) hi

def popLast (a : Array Nat) (i : Nat) (dst : Array Nat) (n : Nat) : Array Nat :=
  if i == n then dst
  else popLast a (i + 1) (Array.push dst (Array.get a i)) n

def qsortGo (fuel : Nat) (a : Array Nat) (lo : Nat) (hi : Nat) : Array Nat :=
  if fuel == 0 then a
  else
    if hi <= lo then a
    else
      let pivot := Array.get a hi;
      let packed := partitionGo a pivot lo lo hi;
      let n := Array.size packed;
      let mid := Array.get packed (n - 1);
      let arr := popLast packed 0 Array.empty (n - 1);
      let left := qsortGo (fuel - 1) arr lo (if mid == 0 then 0 else mid - 1);
      qsortGo (fuel - 1) left (mid + 1) hi

def checksumGo (a : Array Nat) (i : Nat) (acc : Nat) : Nat :=
  if i == Array.size a then acc
  else checksumGo a (i + 1) (acc + (i + 1) * Array.get a i)

def main : Nat :=
  let a := fill 0 {size} 42 Array.empty;
  let sorted := qsortGo {4 * size} a 0 ({size} - 1);
  checksumGo sorted 0 0
"""


def _rbmap(inserts: int) -> str:
    return f"""
inductive Color where
| red
| black

inductive Tree where
| leaf
| node (color : Color) (left : Tree) (key : Nat) (value : Nat) (right : Tree)

def balance1 (c : Color) (l : Tree) (k : Nat) (v : Nat) (r : Tree) : Tree :=
  match c, l, k, v, r with
  | Color.black, Tree.node Color.red (Tree.node Color.red a xk xv b) yk yv c2, zk, zv, d =>
      Tree.node Color.red (Tree.node Color.black a xk xv b) yk yv (Tree.node Color.black c2 zk zv d)
  | Color.black, Tree.node Color.red a xk xv (Tree.node Color.red b yk yv c2), zk, zv, d =>
      Tree.node Color.red (Tree.node Color.black a xk xv b) yk yv (Tree.node Color.black c2 zk zv d)
  | co, le, ke, ve, ri => Tree.node co le ke ve ri

def balance2 (c : Color) (l : Tree) (k : Nat) (v : Nat) (r : Tree) : Tree :=
  match c, l, k, v, r with
  | Color.black, a, xk, xv, Tree.node Color.red (Tree.node Color.red b yk yv c2) zk zv d =>
      Tree.node Color.red (Tree.node Color.black a xk xv b) yk yv (Tree.node Color.black c2 zk zv d)
  | Color.black, a, xk, xv, Tree.node Color.red b yk yv (Tree.node Color.red c2 zk zv d) =>
      Tree.node Color.red (Tree.node Color.black a xk xv b) yk yv (Tree.node Color.black c2 zk zv d)
  | co, le, ke, ve, ri => Tree.node co le ke ve ri

def ins (t : Tree) (k : Nat) (v : Nat) : Tree :=
  match t with
  | Tree.leaf => Tree.node Color.red Tree.leaf k v Tree.leaf
  | Tree.node c l tk tv r =>
      if k < tk then balance1 c (ins l k v) tk tv r
      else (if tk < k then balance2 c l tk tv (ins r k v)
            else Tree.node c l tk v r)

def setBlack (t : Tree) : Tree :=
  match t with
  | Tree.leaf => Tree.leaf
  | Tree.node _ l k v r => Tree.node Color.black l k v r

def insert (t : Tree) (k : Nat) (v : Nat) : Tree := setBlack (ins t k v)

def find (t : Tree) (k : Nat) : Nat :=
  match t with
  | Tree.leaf => 0
  | Tree.node _ l tk tv r =>
      if k < tk then find l k
      else (if tk < k then find r k else tv)

def buildGo (n : Nat) (t : Tree) : Tree :=
  if n == 0 then t
  else buildGo (n - 1) (insert t ((n * 7919) % {inserts * 3}) n)

def sumFinds (n : Nat) (t : Tree) (acc : Nat) : Nat :=
  if n == 0 then acc
  else sumFinds (n - 1) t (acc + find t ((n * 7919) % {inserts * 3}))

def main : Nat :=
  let t := buildGo {inserts} Tree.leaf;
  sumFinds {inserts} t 0
"""


def _unionfind(elements: int, unions: int) -> str:
    return f"""
def initGo (i : Nat) (n : Nat) (a : Array Nat) : Array Nat :=
  if i == n then a
  else initGo (i + 1) n (Array.push a i)

def findRoot (fuel : Nat) (parents : Array Nat) (x : Nat) : Nat :=
  if fuel == 0 then x
  else
    let p := Array.get parents x;
    if p == x then x else findRoot (fuel - 1) parents p

def union (parents : Array Nat) (a : Nat) (b : Nat) : Array Nat :=
  let ra := findRoot {elements} parents a;
  let rb := findRoot {elements} parents b;
  if ra == rb then parents else Array.set parents ra rb

def unionLoop (n : Nat) (seed : Nat) (parents : Array Nat) : Array Nat :=
  if n == 0 then parents
  else
    let s1 := (seed * 1103515245 + 12345) % 2147483648;
    let s2 := (s1 * 1103515245 + 12345) % 2147483648;
    let a := s1 % {elements};
    let b := s2 % {elements};
    unionLoop (n - 1) s2 (union parents a b)

def countRoots (i : Nat) (n : Nat) (parents : Array Nat) (acc : Nat) : Nat :=
  if i == n then acc
  else
    let r := findRoot {elements} parents i;
    countRoots (i + 1) n parents (acc + (if r == i then 1 else 0))

def main : Nat :=
  let parents := initGo 0 {elements} Array.empty;
  let merged := unionLoop {unions} 7 parents;
  countRoots 0 {elements} merged 0
"""


#: Default problem sizes (kept modest because execution is interpreted).
DEFAULT_SIZES: Dict[str, Dict[str, int]] = {
    "binarytrees": {"depth": 6},
    "binarytrees-int": {"depth": 6},
    "const_fold": {"depth": 4, "reps": 6},
    "deriv": {"reps": 6},
    "digits": {"reps": 10, "span": 12},
    "filter": {"length": 60},
    "qsort": {"size": 24},
    "rbmap_checkpoint": {"inserts": 30},
    "unionfind": {"elements": 40, "unions": 30},
}

#: The larger problem-size tier unlocked by the bytecode execution engine:
#: roughly an order of magnitude more executed operations per benchmark
#: than the defaults — too slow to be pleasant under the tree-walkers,
#: comfortable on the VM (``--sizes large`` in the figure harness).
LARGE_SIZES: Dict[str, Dict[str, int]] = {
    "binarytrees": {"depth": 10},
    "binarytrees-int": {"depth": 10},
    "const_fold": {"depth": 5, "reps": 36},
    "deriv": {"reps": 18},
    "digits": {"reps": 80, "span": 32},
    "filter": {"length": 400},
    "qsort": {"size": 96},
    "rbmap_checkpoint": {"inserts": 220},
    "unionfind": {"elements": 300, "unions": 240},
}

#: The extra-large tier funded by the VM 2.0 work (superinstruction
#: fusion, direct-threaded dispatch, explicit call stack): roughly another
#: order of magnitude beyond ``large``.  Only meaningful on the VM — the
#: tree-walkers are skipped for this tier by the timing harness.
XLARGE_SIZES: Dict[str, Dict[str, int]] = {
    "binarytrees": {"depth": 13},
    "binarytrees-int": {"depth": 13},
    "const_fold": {"depth": 6, "reps": 180},
    "deriv": {"reps": 180},
    # digits cost grows superlinearly in reps (fib arguments track the
    # loop counter, so bigint widths grow too): 320/48 lands at ~10x the
    # large tier like the rest of the row.
    "digits": {"reps": 320, "span": 48},
    "filter": {"length": 1600},
    "qsort": {"size": 300},
    "rbmap_checkpoint": {"inserts": 2200},
    "unionfind": {"elements": 2400, "unions": 2000},
}

#: Named size tiers selectable from the harness / figure CLI.
SIZE_TIERS: Dict[str, Dict[str, Dict[str, int]]] = {
    "default": DEFAULT_SIZES,
    "large": LARGE_SIZES,
    "xlarge": XLARGE_SIZES,
}


_GENERATORS = {
    "binarytrees": _binarytrees,
    "binarytrees-int": _binarytrees_int,
    "const_fold": _const_fold,
    "deriv": _deriv,
    "digits": _digits,
    "filter": _filter,
    "qsort": _qsort_simple,
    "rbmap_checkpoint": _rbmap,
    "unionfind": _unionfind,
}


def benchmark_sources(sizes: Dict[str, Dict[str, int]] = None) -> Dict[str, str]:
    """Generate the benchmark source programs at the given (or default) sizes.

    ``sizes`` may name a subset of the suite; only those programs are
    generated (several test modules pin their own reduced size tables).
    """
    sizes = sizes or DEFAULT_SIZES
    return {name: _GENERATORS[name](**params) for name, params in sizes.items()}


BENCHMARK_NAMES = tuple(DEFAULT_SIZES.keys())
