"""Evaluation harness: runs the benchmark suite through the pipeline variants
and computes the speedup series of Figures 9 and 10."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..backend.pipeline import (
    FIGURE10_VARIANTS,
    RC_VARIANTS,
    PipelineOptions,
    run_baseline,
    run_mlir,
    run_reference,
)
from .benchmarks import DEFAULT_SIZES, benchmark_sources


@dataclass
class VariantMeasurement:
    """One (benchmark, pipeline-variant) measurement."""

    benchmark: str
    variant: str
    value: object
    total_cost: int
    total_operations: int
    wall_time_seconds: float
    allocations: int
    rc_ops: int
    reuses: int = 0


@dataclass
class SpeedupRow:
    """One bar of a speedup figure."""

    benchmark: str
    speedup: float
    baseline_cost: int
    candidate_cost: int


@dataclass
class FigureData:
    """All rows of one figure plus the geometric-mean summary."""

    figure: str
    rows: List[SpeedupRow] = field(default_factory=list)
    extra_series: Dict[str, List[SpeedupRow]] = field(default_factory=dict)

    @property
    def geomean(self) -> float:
        return geometric_mean([r.speedup for r in self.rows])

    def geomean_of(self, series: str) -> float:
        return geometric_mean([r.speedup for r in self.extra_series[series]])


def geometric_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _measure(benchmark: str, variant: str, source: str) -> VariantMeasurement:
    if variant == "baseline":
        result = run_baseline(source)
    else:
        options = (
            PipelineOptions()
            if variant == "default"
            else PipelineOptions.variant(variant)
        )
        options.verify_each = False
        result = run_mlir(source, options)
    counts = result.metrics.counts
    return VariantMeasurement(
        benchmark=benchmark,
        variant=variant,
        value=result.value,
        total_cost=result.metrics.total_cost(),
        total_operations=result.metrics.total_operations(),
        wall_time_seconds=result.metrics.wall_time_seconds,
        allocations=result.heap_stats["allocations"],
        rc_ops=counts.get("rc", 0),
        reuses=result.heap_stats.get("reuses", 0),
    )


@dataclass
class RcTableRow:
    """One benchmark's RC traffic across the RC-optimisation variants."""

    benchmark: str
    #: variant name -> measurement (``rc-naive``, ``rc-opt``, ``rc-opt+reuse``).
    measurements: Dict[str, VariantMeasurement] = field(default_factory=dict)

    def rc_reduction(self, variant: str = "rc-opt") -> float:
        """Fractional reduction of executed RC operations vs ``rc-naive``."""
        naive = self.measurements["rc-naive"].rc_ops
        if naive == 0:
            return 0.0
        return 1.0 - self.measurements[variant].rc_ops / naive

    def allocation_reduction(self, variant: str = "rc-opt+reuse") -> float:
        """Fractional reduction of heap allocations vs ``rc-naive``."""
        naive = self.measurements["rc-naive"].allocations
        if naive == 0:
            return 0.0
        return 1.0 - self.measurements[variant].allocations / naive


class EvaluationHarness:
    """Runs every benchmark through the requested pipeline variants."""

    def __init__(self, sizes: Optional[Dict[str, Dict[str, int]]] = None):
        self.sizes = sizes or DEFAULT_SIZES
        self.sources = benchmark_sources(self.sizes)

    # -- correctness ------------------------------------------------------------
    def verify_correctness(self) -> Dict[str, bool]:
        """Check that every backend agrees with the reference interpreter."""
        report: Dict[str, bool] = {}
        for name, source in self.sources.items():
            expected = run_reference(source)
            baseline = run_baseline(source)
            mlir = run_mlir(source)
            report[name] = baseline.value == expected and mlir.value == expected
        return report

    # -- Figure 9 -----------------------------------------------------------------------
    def figure9(self) -> FigureData:
        """Speedup of the lp+rgn backend over the baseline ("leanc") backend."""
        data = FigureData(figure="figure9")
        for name, source in self.sources.items():
            baseline = _measure(name, "baseline", source)
            mlir = _measure(name, "default", source)
            if baseline.value != mlir.value:
                raise AssertionError(
                    f"{name}: backends disagree "
                    f"({baseline.value!r} vs {mlir.value!r})"
                )
            data.rows.append(
                SpeedupRow(
                    benchmark=name,
                    speedup=baseline.total_cost / mlir.total_cost,
                    baseline_cost=baseline.total_cost,
                    candidate_cost=mlir.total_cost,
                )
            )
        return data

    # -- Figure 10 -----------------------------------------------------------------------
    def figure10(self) -> FigureData:
        """Speedup of rgn optimisations (and of no optimisation) over the
        λpure-simplifier variant of the MLIR pipeline."""
        data = FigureData(figure="figure10")
        data.extra_series["none"] = []
        for name, source in self.sources.items():
            simplifier = _measure(name, "simplifier", source)
            rgn = _measure(name, "rgn", source)
            none = _measure(name, "none", source)
            values = {simplifier.value, rgn.value, none.value}
            if len(values) != 1:
                raise AssertionError(f"{name}: pipeline variants disagree: {values}")
            data.rows.append(
                SpeedupRow(
                    benchmark=name,
                    speedup=simplifier.total_cost / rgn.total_cost,
                    baseline_cost=simplifier.total_cost,
                    candidate_cost=rgn.total_cost,
                )
            )
            data.extra_series["none"].append(
                SpeedupRow(
                    benchmark=name,
                    speedup=simplifier.total_cost / none.total_cost,
                    baseline_cost=simplifier.total_cost,
                    candidate_cost=none.total_cost,
                )
            )
        return data

    # -- RC optimisation table ------------------------------------------------------------
    def rc_table(self) -> List[RcTableRow]:
        """RC traffic (``rc_ops``) and heap allocations per benchmark for the
        RC ablation variants — the reporting surface of :mod:`repro.rc_opt`."""
        rows: List[RcTableRow] = []
        for name, source in self.sources.items():
            row = RcTableRow(benchmark=name)
            values = set()
            for variant in RC_VARIANTS:
                measurement = _measure(name, variant, source)
                row.measurements[variant] = measurement
                values.add(measurement.value)
            if len(values) != 1:
                raise AssertionError(f"{name}: RC variants disagree: {values}")
            rows.append(row)
        return rows

    # -- raw measurements ---------------------------------------------------------------------
    def all_measurements(self) -> List[VariantMeasurement]:
        measurements: List[VariantMeasurement] = []
        for name, source in self.sources.items():
            for variant in ("baseline", "default", *FIGURE10_VARIANTS, *RC_VARIANTS):
                measurements.append(_measure(name, variant, source))
        return measurements
