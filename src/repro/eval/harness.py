"""Evaluation harness: runs the benchmark suite through the pipeline variants
and computes the speedup series of Figures 9 and 10.

The harness is session-aware and shardable:

* every measurement threads one :class:`~repro.backend.pipeline.
  CompilationSession` per worker, so the frontend of a source is parsed and
  type-checked once no matter how many variants compile it,
* ``jobs > 1`` fans the suite out across processes — one worker per
  benchmark — and merges the results back in suite order, so the figure
  output is byte-identical to a sequential run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend.pipeline import (
    FIGURE10_VARIANTS,
    RC_VARIANTS,
    CompilationSession,
    PipelineOptions,
    run_baseline,
    run_mlir,
    run_reference,
)
from ..telemetry import get_metrics, get_tracer, measured_metrics
from .benchmarks import DEFAULT_SIZES, benchmark_sources


def measurement_options(
    variant: str,
    *,
    rewrite_engine: Optional[str] = None,
    execution_engine: Optional[str] = None,
    dispatch: Optional[str] = None,
) -> PipelineOptions:
    """The :class:`PipelineOptions` used for *measurement* runs.

    One shared construction point for the harness and the compile-time
    benchmarks: resolves the variant, switches per-pass verification off
    (measurements time the pipeline, not the verifier) and applies the
    requested rewrite and execution engines.  Session/jobs configuration
    threads through the callers; only the per-compile knobs live here.

    Incremental rgn-opt recompilation is switched off: measurement runs
    time the optimisation pipeline itself, and the fingerprint/cache work
    would distort phase timings and per-pass counters (the incremental
    layer has its own guard in ``benchmarks/test_compile_time.py``).
    """
    options = (
        PipelineOptions() if variant == "default" else PipelineOptions.variant(variant)
    )
    options.verify_each = False
    options.incremental_rgn_opt = False
    if rewrite_engine is not None:
        options.rewrite_engine = rewrite_engine
    if execution_engine is not None:
        options.execution_engine = execution_engine
    if dispatch is not None:
        options.dispatch = dispatch
    return options


@dataclass
class VariantMeasurement:
    """One (benchmark, pipeline-variant) measurement."""

    benchmark: str
    variant: str
    value: object
    total_cost: int
    total_operations: int
    wall_time_seconds: float
    allocations: int
    rc_ops: int
    reuses: int = 0
    #: Unified-telemetry metrics delta recorded while this measurement ran
    #: (empty unless a telemetry session was active; see
    #: ``docs/OBSERVABILITY.md``).
    metrics: Dict[str, object] = field(default_factory=dict)


@dataclass
class SpeedupRow:
    """One bar of a speedup figure."""

    benchmark: str
    speedup: float
    baseline_cost: int
    candidate_cost: int


@dataclass
class FigureData:
    """All rows of one figure plus the geometric-mean summary."""

    figure: str
    rows: List[SpeedupRow] = field(default_factory=list)
    extra_series: Dict[str, List[SpeedupRow]] = field(default_factory=dict)

    @property
    def geomean(self) -> float:
        return geometric_mean([r.speedup for r in self.rows])

    def geomean_of(self, series: str) -> float:
        return geometric_mean([r.speedup for r in self.extra_series[series]])


def geometric_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _measure(
    benchmark: str,
    variant: str,
    source: str,
    session: Optional[CompilationSession] = None,
    execution_engine: str = "vm",
    dispatch: str = "threaded",
) -> VariantMeasurement:
    def run():
        if variant == "baseline":
            return run_baseline(
                source, session=session, execution_engine=execution_engine,
                dispatch=dispatch,
            )
        return run_mlir(
            source,
            measurement_options(
                variant, execution_engine=execution_engine, dispatch=dispatch
            ),
            session=session,
        )

    with get_tracer().span(
        "measure:" + benchmark, category="harness", variant=variant
    ):
        if get_metrics().enabled:
            # Record this measurement's metrics delta — the registry is the
            # active session's, so outer aggregations still see everything.
            with measured_metrics() as metrics_delta:
                get_metrics().bump("harness.measurements")
                result = run()
        else:
            metrics_delta = {}
            result = run()
    counts = result.metrics.counts
    return VariantMeasurement(
        benchmark=benchmark,
        variant=variant,
        value=result.value,
        total_cost=result.metrics.total_cost(),
        total_operations=result.metrics.total_operations(),
        wall_time_seconds=result.metrics.wall_time_seconds,
        allocations=result.heap_stats["allocations"],
        rc_ops=counts.get("rc", 0),
        reuses=result.heap_stats.get("reuses", 0),
        metrics=dict(metrics_delta),
    )


def _measure_benchmark_worker(
    task: Tuple[str, str, Tuple[str, ...], str, str],
) -> List[VariantMeasurement]:
    """One shard: measure every requested variant of one benchmark.

    Runs in a worker process, so it builds its own session — the frontend
    of the benchmark is still shared across the variants it measures.
    """
    name, source, variants, execution_engine, dispatch = task
    session = CompilationSession()
    return [
        _measure(name, variant, source, session, execution_engine, dispatch)
        for variant in variants
    ]


def run_sharded(tasks: Sequence, worker, jobs: int) -> Optional[List]:
    """Run ``worker`` over ``tasks`` in a process pool, results in order.

    Returns None when sharding is unavailable (no ``fork`` start method) or
    pointless (one task / one job); callers then fall back to sequential.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return None
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None
    with get_tracer().span(
        "harness:sharded", category="harness", jobs=jobs, tasks=len(tasks)
    ):
        # Forked workers inherit the active telemetry session (contextvars
        # copy on fork); per-measurement metric deltas travel back inside
        # the pickled measurements, while worker-side spans stay local.
        with context.Pool(processes=min(jobs, len(tasks))) as pool:
            return pool.map(worker, tasks)


@dataclass
class RcTableRow:
    """One benchmark's RC traffic across the RC-optimisation variants."""

    benchmark: str
    #: variant name -> measurement (``rc-naive``, ``rc-opt``, ``rc-opt+reuse``).
    measurements: Dict[str, VariantMeasurement] = field(default_factory=dict)

    def rc_reduction(self, variant: str = "rc-opt") -> float:
        """Fractional reduction of executed RC operations vs ``rc-naive``."""
        naive = self.measurements["rc-naive"].rc_ops
        if naive == 0:
            return 0.0
        return 1.0 - self.measurements[variant].rc_ops / naive

    def allocation_reduction(self, variant: str = "rc-opt+reuse") -> float:
        """Fractional reduction of heap allocations vs ``rc-naive``."""
        naive = self.measurements["rc-naive"].allocations
        if naive == 0:
            return 0.0
        return 1.0 - self.measurements[variant].allocations / naive


class EvaluationHarness:
    """Runs every benchmark through the requested pipeline variants.

    ``jobs`` shards measurement across processes (one worker per
    benchmark); ``session`` is the compilation session used for sequential
    runs (each worker process builds its own).  ``execution_engine``
    selects how compiled programs run: ``"vm"`` (register bytecode, the
    default) or ``"tree"`` (the tree-walking oracles) — the figures are
    byte-identical either way, only wall time changes.
    """

    def __init__(
        self,
        sizes: Optional[Dict[str, Dict[str, int]]] = None,
        *,
        jobs: int = 1,
        session: Optional[CompilationSession] = None,
        execution_engine: str = "vm",
        dispatch: str = "threaded",
    ):
        self.sizes = sizes or DEFAULT_SIZES
        self.sources = benchmark_sources(self.sizes)
        self.jobs = max(1, int(jobs))
        self.session = session if session is not None else CompilationSession()
        self.execution_engine = execution_engine
        self.dispatch = dispatch

    # -- measurement fan-out ----------------------------------------------------
    def _measurements(
        self, variants: Sequence[str]
    ) -> Dict[str, Dict[str, VariantMeasurement]]:
        """Measure ``variants`` for every benchmark, sharded when ``jobs > 1``.

        Returns ``{benchmark: {variant: measurement}}`` in suite order —
        identical whichever way the measurements were scheduled.
        """
        tasks = [
            (name, source, tuple(variants), self.execution_engine, self.dispatch)
            for name, source in self.sources.items()
        ]
        results = run_sharded(tasks, _measure_benchmark_worker, self.jobs)
        if results is None:
            results = [
                [
                    _measure(name, variant, source, self.session, engine, dispatch)
                    for variant in variants
                ]
                for name, source, variants, engine, dispatch in tasks
            ]
        return {
            task[0]: {m.variant: m for m in measurements}
            for task, measurements in zip(tasks, results)
        }

    # -- correctness ------------------------------------------------------------
    def verify_correctness(self) -> Dict[str, bool]:
        """Check that every backend agrees with the reference interpreter."""
        report: Dict[str, bool] = {}
        for name, source in self.sources.items():
            expected = run_reference(source, session=self.session)
            baseline = run_baseline(
                source, session=self.session,
                execution_engine=self.execution_engine, dispatch=self.dispatch,
            )
            options = PipelineOptions(
                execution_engine=self.execution_engine, dispatch=self.dispatch
            )
            mlir = run_mlir(source, options, session=self.session)
            report[name] = baseline.value == expected and mlir.value == expected
        return report

    # -- Figure 9 -----------------------------------------------------------------------
    def figure9(self) -> FigureData:
        """Speedup of the lp+rgn backend over the baseline ("leanc") backend."""
        data = FigureData(figure="figure9")
        measured = self._measurements(("baseline", "default"))
        for name in self.sources:
            baseline = measured[name]["baseline"]
            mlir = measured[name]["default"]
            if baseline.value != mlir.value:
                raise AssertionError(
                    f"{name}: backends disagree "
                    f"({baseline.value!r} vs {mlir.value!r})"
                )
            data.rows.append(
                SpeedupRow(
                    benchmark=name,
                    speedup=baseline.total_cost / mlir.total_cost,
                    baseline_cost=baseline.total_cost,
                    candidate_cost=mlir.total_cost,
                )
            )
        return data

    # -- Figure 10 -----------------------------------------------------------------------
    def figure10(self) -> FigureData:
        """Speedup of rgn optimisations (and of no optimisation) over the
        λpure-simplifier variant of the MLIR pipeline."""
        data = FigureData(figure="figure10")
        data.extra_series["none"] = []
        measured = self._measurements(FIGURE10_VARIANTS)
        for name in self.sources:
            simplifier = measured[name]["simplifier"]
            rgn = measured[name]["rgn"]
            none = measured[name]["none"]
            values = {simplifier.value, rgn.value, none.value}
            if len(values) != 1:
                raise AssertionError(f"{name}: pipeline variants disagree: {values}")
            data.rows.append(
                SpeedupRow(
                    benchmark=name,
                    speedup=simplifier.total_cost / rgn.total_cost,
                    baseline_cost=simplifier.total_cost,
                    candidate_cost=rgn.total_cost,
                )
            )
            data.extra_series["none"].append(
                SpeedupRow(
                    benchmark=name,
                    speedup=simplifier.total_cost / none.total_cost,
                    baseline_cost=simplifier.total_cost,
                    candidate_cost=none.total_cost,
                )
            )
        return data

    # -- RC optimisation table ------------------------------------------------------------
    def rc_table(self) -> List[RcTableRow]:
        """RC traffic (``rc_ops``) and heap allocations per benchmark for the
        RC ablation variants — the reporting surface of :mod:`repro.rc_opt`."""
        rows: List[RcTableRow] = []
        measured = self._measurements(RC_VARIANTS)
        for name in self.sources:
            row = RcTableRow(benchmark=name)
            values = set()
            for variant in RC_VARIANTS:
                measurement = measured[name][variant]
                row.measurements[variant] = measurement
                values.add(measurement.value)
            if len(values) != 1:
                raise AssertionError(f"{name}: RC variants disagree: {values}")
            rows.append(row)
        return rows

    # -- raw measurements ---------------------------------------------------------------------
    def all_measurements(self) -> List[VariantMeasurement]:
        variants = ("baseline", "default", *FIGURE10_VARIANTS, *RC_VARIANTS)
        measured = self._measurements(variants)
        return [
            measured[name][variant]
            for name in self.sources
            for variant in variants
        ]
