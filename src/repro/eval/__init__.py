"""Evaluation: benchmark programs, harness and figure regeneration."""

from .benchmarks import BENCHMARK_NAMES, DEFAULT_SIZES, benchmark_sources
from .harness import (
    EvaluationHarness,
    FigureData,
    RcTableRow,
    SpeedupRow,
    VariantMeasurement,
    geometric_mean,
    measurement_options,
)
from .testsuite import TestProgram, programs_by_category, regression_programs

__all__ = [
    "BENCHMARK_NAMES",
    "DEFAULT_SIZES",
    "benchmark_sources",
    "EvaluationHarness",
    "FigureData",
    "RcTableRow",
    "SpeedupRow",
    "VariantMeasurement",
    "geometric_mean",
    "measurement_options",
    "TestProgram",
    "programs_by_category",
    "regression_programs",
]
