"""Regenerate the paper's figures as text reports.

Usage::

    python -m repro.eval.figures --figure 9
    python -m repro.eval.figures --figure 10
    python -m repro.eval.figures --figure 11
    python -m repro.eval.figures --figure rc
    python -m repro.eval.figures --figure compile
    python -m repro.eval.figures --all
    python -m repro.eval.figures --all --jobs 4   # shard across processes
    python -m repro.eval.figures --figure 9 --sizes xlarge      # biggest tier
    python -m repro.eval.figures --all --sizes default          # quick tier
    python -m repro.eval.figures --all --execution-engine tree  # oracle engine

The ``large`` tier is the figure default (the fused direct-threaded VM is
fast enough); ``default`` stays the quick tier for smoke runs and the
tree-walking oracles, and ``xlarge`` exercises the VM 2.0 headroom.

Each report prints the same rows/series as the paper's figure; absolute
numbers differ (the substrate is a cost-model interpreter, not the authors'
Xeon testbed) but the shape — per-benchmark speedups hovering around parity —
is what the paper's conclusion rests on.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from ..interp.bytecode import DISPATCH_MODES, EXECUTION_ENGINES
from ..telemetry import telemetry_session
from .benchmarks import SIZE_TIERS
from .harness import EvaluationHarness, FigureData

#: Paper-reported speedups (Figure 9): lp+rgn backend over leanc.
PAPER_FIGURE9 = {
    "binarytrees-int": 1.05,
    "binarytrees": 1.12,
    "const_fold": 1.01,
    "deriv": 1.04,
    "filter": 0.93,
    "qsort": 0.99,
    "rbmap_checkpoint": 1.39,
    "unionfind": 1.27,
    "geomean": 1.09,
}

#: Paper-reported speedups (Figure 10): rgn optimisations over the λrc
#: simplifier.
PAPER_FIGURE10 = {
    "binarytrees-int": 1.05,
    "binarytrees": 1.0,
    "const_fold": 0.98,
    "deriv": 1.05,
    "filter": 0.95,
    "qsort": 0.97,
    "rbmap_checkpoint": 1.0,
    "unionfind": 0.98,
    "geomean": 1.0,
}

#: Figure 11: the qualitative ecosystem comparison, as reproduced by this
#: repository (feature -> (baseline pipeline, lp+rgn pipeline)).
FIGURE11_ROWS = [
    ("Backend", "C-like emission (c_backend)", "mini-MLIR (lp + rgn dialects)"),
    ("Vectorization", "No", "possible via dialects (affine/linalg analogue)"),
    ("Testing harness", "ad-hoc scripts", "pytest + textual IR FileCheck-style tests"),
    ("Constant folding", "hand-written (λpure simplifier)", "rewrite patterns (constant-fold pass)"),
    ("CSE", "hand-written", "builtin pass (cse, extended by region-gvn)"),
    ("DCE", "hand-written", "builtin pass (dce / dead-region-elimination)"),
    ("Inliner", "hand-written join inlining", "builtin pass (inline)"),
    ("Test minimization", "none", "tools/reduce (mlir-reduce analogue)"),
    ("Debug information", "none", "value name hints preserved end-to-end"),
    ("IDE support", "none", "textual IR + parser (LSP-ready)"),
    ("Tail call optimization", "heuristic", "guaranteed (musttail attribute)"),
]


def _bar(value: float, scale: int = 40) -> str:
    filled = max(0, min(int(round(value * scale / 1.5)), scale))
    return "#" * filled


def format_speedup_figure(
    data: FigureData,
    title: str,
    paper: Optional[dict] = None,
    extra_label: Optional[str] = None,
) -> str:
    lines: List[str] = []
    lines.append(title)
    lines.append("=" * len(title))
    header = f"{'benchmark':20s} {'speedup':>8s}"
    if extra_label:
        header += f" {extra_label:>10s}"
    if paper:
        header += f" {'paper':>8s}"
    lines.append(header)
    for index, row in enumerate(data.rows):
        line = f"{row.benchmark:20s} {row.speedup:8.3f}"
        if extra_label:
            other = data.extra_series[extra_label][index]
            line += f" {other.speedup:10.3f}"
        if paper:
            line += f" {paper.get(row.benchmark, float('nan')):8.2f}"
        line += "  " + _bar(row.speedup)
        lines.append(line)
    summary = f"{'geomean':20s} {data.geomean:8.3f}"
    if extra_label:
        summary += f" {data.geomean_of(extra_label):10.3f}"
    if paper:
        summary += f" {paper.get('geomean', float('nan')):8.2f}"
    lines.append("-" * len(header))
    lines.append(summary)
    return "\n".join(lines)


def figure9_report(harness: Optional[EvaluationHarness] = None) -> str:
    harness = harness or EvaluationHarness()
    data = harness.figure9()
    return format_speedup_figure(
        data,
        "Figure 9: speedup of the lp+rgn backend over the baseline (leanc)",
        paper=PAPER_FIGURE9,
    )


def figure10_report(harness: Optional[EvaluationHarness] = None) -> str:
    harness = harness or EvaluationHarness()
    data = harness.figure10()
    return format_speedup_figure(
        data,
        "Figure 10: speedup of rgn optimisations over the λrc simplifier "
        "(and of no optimisation, right column)",
        paper=PAPER_FIGURE10,
        extra_label="none",
    )


def figure11_table() -> str:
    lines = [
        "Figure 11: ecosystem comparison (baseline λrc+C vs lp+rgn)",
        "=" * 60,
        f"{'Feature':24s} {'λrc + C':34s} {'lp + rgn'}",
        "-" * 110,
    ]
    for feature, old, new in FIGURE11_ROWS:
        lines.append(f"{feature:24s} {old:34s} {new}")
    return "\n".join(lines)


def rc_report(harness: Optional[EvaluationHarness] = None) -> str:
    """The RC-optimisation ablation (the :mod:`repro.rc_opt` subsystem):
    executed RC operations and heap allocations per benchmark for
    ``rc-naive`` / ``rc-opt`` / ``rc-opt+reuse``."""
    harness = harness or EvaluationHarness()
    rows = harness.rc_table()
    title = "RC optimisation: rc ops and allocations by variant"
    lines = [title, "=" * len(title)]
    header = (
        f"{'benchmark':18s} {'rc naive':>9s} {'rc opt':>9s} {'Δrc':>7s}"
        f" {'alloc naive':>12s} {'alloc reuse':>12s} {'Δalloc':>7s} {'reused':>7s}"
    )
    lines.append(header)
    for row in rows:
        naive = row.measurements["rc-naive"]
        opt = row.measurements["rc-opt"]
        reuse = row.measurements["rc-opt+reuse"]
        lines.append(
            f"{row.benchmark:18s} {naive.rc_ops:9d} {opt.rc_ops:9d}"
            f" {row.rc_reduction('rc-opt'):6.1%}"
            f" {naive.allocations:12d} {reuse.allocations:12d}"
            f" {row.allocation_reduction('rc-opt+reuse'):6.1%}"
            f" {reuse.reuses:7d}"
        )
    total_naive_rc = sum(r.measurements["rc-naive"].rc_ops for r in rows)
    total_opt_rc = sum(r.measurements["rc-opt"].rc_ops for r in rows)
    total_naive_alloc = sum(r.measurements["rc-naive"].allocations for r in rows)
    total_reuse_alloc = sum(r.measurements["rc-opt+reuse"].allocations for r in rows)
    total_reuses = sum(r.measurements["rc-opt+reuse"].reuses for r in rows)
    lines.append("-" * len(header))
    rc_delta = 1.0 - total_opt_rc / total_naive_rc if total_naive_rc else 0.0
    alloc_delta = (
        1.0 - total_reuse_alloc / total_naive_alloc if total_naive_alloc else 0.0
    )
    lines.append(
        f"{'total':18s} {total_naive_rc:9d} {total_opt_rc:9d} {rc_delta:6.1%}"
        f" {total_naive_alloc:12d} {total_reuse_alloc:12d} {alloc_delta:6.1%}"
        f" {total_reuses:7d}"
    )
    return "\n".join(lines)


def compile_time_report(jobs: int = 1) -> str:
    """Compile-time report: per-phase timings and the rewrite-engine
    differential (see :mod:`repro.eval.compile_bench`)."""
    from .compile_bench import compile_report

    return compile_report(jobs=jobs)


def correctness_report(harness: Optional[EvaluationHarness] = None) -> str:
    harness = harness or EvaluationHarness()
    report = harness.verify_correctness()
    passed = sum(1 for ok in report.values() if ok)
    lines = ["Benchmark-suite correctness (both backends vs reference):"]
    for name, ok in report.items():
        lines.append(f"  {name:20s} {'PASS' if ok else 'FAIL'}")
    lines.append(f"{passed}/{len(report)} benchmarks agree with the reference")
    return "\n".join(lines)


def write_measurement_metrics(path: str, harness: EvaluationHarness) -> int:
    """Measure the full variant matrix and write per-measurement metrics.

    Each row pairs one (benchmark, variant) measurement with the unified
    metrics delta recorded while it ran, so figure data and telemetry land
    in one artifact.  Returns the number of rows written.
    """
    with telemetry_session():
        measurements = harness.all_measurements()
    payload = {
        "schema": "repro/metrics/v1",
        "measurements": [
            {
                "benchmark": m.benchmark,
                "variant": m.variant,
                "metrics": m.metrics,
            }
            for m in measurements
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=False, default=str)
        handle.write("\n")
    return len(payload["measurements"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure", choices=["9", "10", "11", "rc", "compile"], default=None
    )
    parser.add_argument("--all", action="store_true", help="print every figure")
    parser.add_argument(
        "--correctness", action="store_true", help="print the correctness report"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard measurement across N worker processes (one benchmark "
        "per worker); the figure output is byte-identical to --jobs 1",
    )
    parser.add_argument(
        "--execution-engine", choices=EXECUTION_ENGINES, default="vm",
        help="how compiled programs execute: the register-bytecode VM "
        "(default) or the tree-walking oracle interpreters; the figure "
        "output is byte-identical either way",
    )
    parser.add_argument(
        "--sizes", choices=sorted(SIZE_TIERS), default="large",
        help="benchmark problem-size tier; 'large' (the default) is sized "
        "for the bytecode engine and 'xlarge' for the fused direct-"
        "threaded VM",
    )
    parser.add_argument(
        "--dispatch", choices=DISPATCH_MODES, default="threaded",
        help="VM dispatch strategy (vm engine only); the figure output is "
        "byte-identical either way",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="measure the full variant matrix and write per-measurement "
        "unified-telemetry metrics to PATH",
    )
    args = parser.parse_args(argv)

    printed = False
    harness = EvaluationHarness(
        SIZE_TIERS[args.sizes],
        jobs=args.jobs,
        execution_engine=args.execution_engine,
        dispatch=args.dispatch,
    )
    if args.correctness:
        print(correctness_report(harness))
        printed = True
    if args.all or args.figure == "9":
        print(figure9_report(harness))
        print()
        printed = True
    if args.all or args.figure == "10":
        print(figure10_report(harness))
        print()
        printed = True
    if args.all or args.figure == "11":
        print(figure11_table())
        printed = True
    if args.all or args.figure == "rc":
        print(rc_report(harness))
        printed = True
    if args.all or args.figure == "compile":
        print(compile_time_report(jobs=args.jobs))
        printed = True
    if args.metrics_json:
        rows = write_measurement_metrics(args.metrics_json, harness)
        print(f"wrote {args.metrics_json} ({rows} measurements)")
        printed = True
    if not printed:
        parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
