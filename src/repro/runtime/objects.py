"""The simulated LEAN runtime object model (``libleanrt`` substitute).

LEAN represents values uniformly as ``lean_object*``:

* small integers and field-less constructors are *scalars* — tagged machine
  words that are not heap allocated and not reference counted,
* constructor applications, closures, big integers, arrays and strings are
  heap objects with a reference count.

We mirror that split: :class:`Scalar` / :class:`Enum` values are unboxed,
:class:`HeapObject` subclasses live on the :class:`Heap`, which tracks
allocation statistics and verifies reference-count balance (no leaks, no
double frees) — the property our differential tests assert.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Integers with absolute value below this bound are unboxed scalars
#: (LEAN guarantees small naturals are machine words).
SCALAR_INT_LIMIT = 2**62


class RuntimeError_(Exception):
    """Raised by the runtime on invalid operations (double free, bad tag...)."""


class Value:
    """Base class of runtime values."""


class Scalar(Value):
    """An unboxed machine integer (no reference count)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self):
        return f"Scalar({self.value})"


class Enum(Value):
    """A field-less constructor, represented unboxed as its tag."""

    __slots__ = ("tag",)

    def __init__(self, tag: int):
        self.tag = tag

    def __repr__(self):
        return f"Enum({self.tag})"


class NullToken(Value):
    """The null reuse token: ``reset`` of a shared (or unboxed) value.

    ``reuse`` through a null token falls back to a fresh allocation.
    """

    __slots__ = ()

    def __repr__(self):
        return "NullToken()"


#: The singleton null token (tokens carry no state when dead).
NULL_TOKEN = NullToken()


class HeapObject(Value):
    """Base class of reference-counted heap objects."""

    kind = "object"

    def __init__(self):
        self.rc = 1
        self.freed = False

    def children(self) -> List[Value]:
        """Heap references owned by this object (released on free)."""
        return []


class CtorObject(HeapObject):
    """A constructor application with at least one field."""

    kind = "ctor"

    def __init__(self, tag: int, fields: List[Value]):
        super().__init__()
        self.tag = tag
        self.fields = list(fields)

    def children(self) -> List[Value]:
        return list(self.fields)

    def __repr__(self):
        return f"Ctor(tag={self.tag}, fields={len(self.fields)}, rc={self.rc})"


class ClosureObject(HeapObject):
    """A closure: a top-level function plus the arguments captured so far."""

    kind = "closure"

    def __init__(self, fn_name: str, arity: int, args: List[Value]):
        super().__init__()
        self.fn_name = fn_name
        self.arity = arity
        self.args = list(args)

    def children(self) -> List[Value]:
        return list(self.args)

    @property
    def missing(self) -> int:
        return self.arity - len(self.args)

    def __repr__(self):
        return (
            f"Closure({self.fn_name}, {len(self.args)}/{self.arity}, rc={self.rc})"
        )


class BigIntObject(HeapObject):
    """An arbitrary-precision integer too large to be a scalar."""

    kind = "bigint"

    def __init__(self, value: int):
        super().__init__()
        self.value = value

    def __repr__(self):
        return f"BigInt({self.value}, rc={self.rc})"


class ArrayObject(HeapObject):
    """LEAN's dynamic array of boxed values."""

    kind = "array"

    def __init__(self, items: Optional[List[Value]] = None):
        super().__init__()
        self.items = list(items or [])

    def children(self) -> List[Value]:
        return list(self.items)

    def __repr__(self):
        return f"Array(len={len(self.items)}, rc={self.rc})"


class StringObject(HeapObject):
    """An immutable string."""

    kind = "string"

    def __init__(self, value: str):
        super().__init__()
        self.value = value

    def __repr__(self):
        return f"String({self.value!r}, rc={self.rc})"


class HeapStatistics:
    """Aggregate allocation / reference-counting statistics."""

    def __init__(self):
        self.allocations = 0
        self.frees = 0
        self.inc_ops = 0
        self.dec_ops = 0
        self.peak_live = 0
        self.resets = 0
        self.reuses = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "allocations": self.allocations,
            "frees": self.frees,
            "inc_ops": self.inc_ops,
            "dec_ops": self.dec_ops,
            "peak_live": self.peak_live,
            "resets": self.resets,
            "reuses": self.reuses,
        }


class Heap:
    """Tracks live heap objects and implements reference counting."""

    def __init__(self):
        self.live: Dict[int, HeapObject] = {}
        self.stats = HeapStatistics()

    # -- allocation --------------------------------------------------------------
    def register(self, obj: HeapObject) -> HeapObject:
        self.live[id(obj)] = obj
        self.stats.allocations += 1
        self.stats.peak_live = max(self.stats.peak_live, len(self.live))
        return obj

    def alloc_ctor(self, tag: int, fields: List[Value]) -> Value:
        if not fields:
            return Enum(tag)
        return self.register(CtorObject(tag, fields))

    def alloc_closure(self, fn_name: str, arity: int, args: List[Value]) -> ClosureObject:
        closure = ClosureObject(fn_name, arity, args)
        return self.register(closure)

    def alloc_int(self, value: int) -> Value:
        if abs(value) < SCALAR_INT_LIMIT:
            return Scalar(value)
        return self.register(BigIntObject(value))

    def alloc_array(self, items: Optional[List[Value]] = None) -> ArrayObject:
        return self.register(ArrayObject(items))

    def alloc_string(self, value: str) -> StringObject:
        return self.register(StringObject(value))

    # -- reference counting -------------------------------------------------------
    def inc(self, value: Value, count: int = 1) -> None:
        self.stats.inc_ops += 1
        if isinstance(value, HeapObject):
            if value.freed:
                raise RuntimeError_("inc of a freed object")
            value.rc += count

    def dec(self, value: Value, count: int = 1) -> None:
        self.stats.dec_ops += 1
        if not isinstance(value, HeapObject):
            return
        self._dec_object(value, count)

    def _dec_object(self, obj: HeapObject, count: int = 1) -> None:
        if obj.freed:
            raise RuntimeError_("dec of a freed object (double free)")
        if obj.rc < count:
            raise RuntimeError_(
                f"reference count underflow on {obj!r} (rc={obj.rc}, dec {count})"
            )
        obj.rc -= count
        if obj.rc == 0:
            self._free(obj)

    def _free(self, obj: HeapObject) -> None:
        obj.freed = True
        self.live.pop(id(obj), None)
        self.stats.frees += 1
        for child in obj.children():
            if isinstance(child, HeapObject):
                self._dec_object(child)

    # -- constructor reuse (reset/reuse tokens) -----------------------------------
    def reset(self, value: Value) -> Value:
        """Consume one reference to ``value`` and produce a reuse token.

        A uniquely-owned constructor cell releases its fields and becomes a
        live token (the cell stays registered and is recycled by
        :meth:`reuse`); anything else is decremented as a plain ``dec`` and
        yields the null token.
        """
        self.stats.resets += 1
        if isinstance(value, CtorObject):
            if value.freed:
                raise RuntimeError_("reset of a freed object")
            if value.rc == 1:
                for child in value.fields:
                    if isinstance(child, HeapObject):
                        self._dec_object(child)
                value.fields = []
                return value
        self.dec(value)
        return NULL_TOKEN

    def reuse(self, token: Value, tag: int, fields: List[Value]) -> Value:
        """Construct ``tag(fields)`` through a reuse token.

        A live token is overwritten in place — no allocation is performed;
        the null token falls back to :meth:`alloc_ctor`.
        """
        if isinstance(token, CtorObject):
            if token.freed or token.rc != 1:
                raise RuntimeError_(f"reuse of an invalid token {token!r}")
            if not fields:
                # Field-less constructors are unboxed: discard the cell.
                self._dec_object(token)
                return Enum(tag)
            token.tag = tag
            token.fields = list(fields)
            self.stats.reuses += 1
            return token
        if not isinstance(token, NullToken):
            raise RuntimeError_(f"reuse through a non-token value {token!r}")
        return self.alloc_ctor(tag, fields)

    # -- diagnostics ----------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return len(self.live)

    def check_balanced(self) -> None:
        """Raise if any heap object is still live (a leak)."""
        if self.live:
            samples = list(self.live.values())[:5]
            raise RuntimeError_(
                f"heap leak: {len(self.live)} objects still live, e.g. {samples}"
            )


# ---------------------------------------------------------------------------
# Conversions shared by runtime builtins and interpreters
# ---------------------------------------------------------------------------


def int_value(value: Value) -> int:
    """Read the integer stored in a scalar or big-integer value."""
    if isinstance(value, Scalar):
        return value.value
    if isinstance(value, BigIntObject):
        return value.value
    if isinstance(value, Enum):
        return value.tag
    raise RuntimeError_(f"expected an integer value, got {value!r}")


def tag_of(value: Value) -> int:
    """Read the constructor tag of a value (``lp.getlabel`` semantics)."""
    if isinstance(value, Enum):
        return value.tag
    if isinstance(value, CtorObject):
        return value.tag
    if isinstance(value, Scalar):
        return value.value
    raise RuntimeError_(f"value {value!r} has no constructor tag")


def python_value(value: Value) -> object:
    """Convert a runtime value into a plain Python value (for tests/reports)."""
    if isinstance(value, Scalar):
        return value.value
    if isinstance(value, BigIntObject):
        return value.value
    if isinstance(value, Enum):
        return value.tag
    if isinstance(value, CtorObject):
        return (value.tag, tuple(python_value(f) for f in value.fields))
    if isinstance(value, ArrayObject):
        return [python_value(v) for v in value.items]
    if isinstance(value, StringObject):
        return value.value
    if isinstance(value, ClosureObject):
        return f"<closure {value.fn_name}>"
    raise RuntimeError_(f"cannot convert {value!r}")
