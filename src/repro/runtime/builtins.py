"""The LEAN runtime call table.

Every entry models one ``libleanrt`` routine that λrc / the lp dialect lowers
to (``lean_nat_add``, ``lean_nat_dec_eq``, ``lean_array_push``, ...).  The
calling convention matches our simplified λrc ownership discipline: **all
arguments are owned by the callee** and the **result is owned by the
caller**.  Scalars are unaffected; heap arguments are released (or reused
in place, in the case of unique arrays) before returning.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .objects import (
    ArrayObject,
    BigIntObject,
    Enum,
    Heap,
    HeapObject,
    RuntimeError_,
    Scalar,
    StringObject,
    Value,
    int_value,
)

#: Bool constructor tags (match ``repro.lean.prelude``).
FALSE = 0
TRUE = 1


class RuntimeContext:
    """Holds the heap plus I/O captured by ``lean_io_println``."""

    def __init__(self, heap: Heap = None):
        self.heap = heap if heap is not None else Heap()
        self.output: List[str] = []

    # -- helpers ---------------------------------------------------------------
    def release(self, value: Value) -> None:
        """Release a consumed (owned) argument."""
        if isinstance(value, HeapObject):
            self.heap.dec(value)

    def bool_value(self, flag: bool) -> Value:
        return Enum(TRUE if flag else FALSE)

    def int_result(self, value: int) -> Value:
        return self.heap.alloc_int(value)


BuiltinImpl = Callable[[RuntimeContext, List[Value]], Value]

BUILTINS: Dict[str, BuiltinImpl] = {}


def builtin(name: str):
    """Register a runtime routine under ``name``."""

    def decorator(fn: BuiltinImpl) -> BuiltinImpl:
        BUILTINS[name] = fn
        return fn

    return decorator


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def call_builtin(ctx: RuntimeContext, name: str, args: List[Value]) -> Value:
    if name not in BUILTINS:
        raise RuntimeError_(f"unknown runtime function {name}")
    return BUILTINS[name](ctx, args)


# ---------------------------------------------------------------------------
# Nat / Int arithmetic
# ---------------------------------------------------------------------------


def _binary_int(ctx: RuntimeContext, args, op, *, truncate_nat: bool) -> Value:
    a, b = args
    result = op(int_value(a), int_value(b))
    if truncate_nat and result < 0:
        result = 0
    ctx.release(a)
    ctx.release(b)
    return ctx.int_result(result)


def _compare(ctx: RuntimeContext, args, op) -> Value:
    a, b = args
    result = op(int_value(a), int_value(b))
    ctx.release(a)
    ctx.release(b)
    return ctx.bool_value(result)


@builtin("lean_nat_add")
def _nat_add(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a + b, truncate_nat=True)


@builtin("lean_nat_sub")
def _nat_sub(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a - b, truncate_nat=True)


@builtin("lean_nat_mul")
def _nat_mul(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a * b, truncate_nat=True)


@builtin("lean_nat_div")
def _nat_div(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a // b if b else 0, truncate_nat=True)


@builtin("lean_nat_mod")
def _nat_mod(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a % b if b else a, truncate_nat=True)


@builtin("lean_int_add")
def _int_add(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a + b, truncate_nat=False)


@builtin("lean_int_sub")
def _int_sub(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a - b, truncate_nat=False)


@builtin("lean_int_mul")
def _int_mul(ctx, args):
    return _binary_int(ctx, args, lambda a, b: a * b, truncate_nat=False)


@builtin("lean_int_div")
def _int_div(ctx, args):
    # LEAN's Int division truncates towards zero.
    return _binary_int(
        ctx,
        args,
        lambda a, b: int(a / b) if b else 0,
        truncate_nat=False,
    )


@builtin("lean_int_mod")
def _int_mod(ctx, args):
    return _binary_int(
        ctx,
        args,
        lambda a, b: a - int(a / b) * b if b else a,
        truncate_nat=False,
    )


@builtin("lean_int_neg")
def _int_neg(ctx, args):
    (a,) = args
    result = -int_value(a)
    ctx.release(a)
    return ctx.int_result(result)


@builtin("lean_nat_to_int")
def _nat_to_int(ctx, args):
    (a,) = args
    result = int_value(a)
    ctx.release(a)
    return ctx.int_result(result)


@builtin("lean_int_to_nat")
def _int_to_nat(ctx, args):
    (a,) = args
    result = max(int_value(a), 0)
    ctx.release(a)
    return ctx.int_result(result)


for _name, _op in [
    ("lean_nat_dec_eq", lambda a, b: a == b),
    ("lean_nat_dec_ne", lambda a, b: a != b),
    ("lean_nat_dec_lt", lambda a, b: a < b),
    ("lean_nat_dec_le", lambda a, b: a <= b),
    ("lean_nat_dec_gt", lambda a, b: a > b),
    ("lean_nat_dec_ge", lambda a, b: a >= b),
    ("lean_int_dec_eq", lambda a, b: a == b),
    ("lean_int_dec_ne", lambda a, b: a != b),
    ("lean_int_dec_lt", lambda a, b: a < b),
    ("lean_int_dec_le", lambda a, b: a <= b),
    ("lean_int_dec_gt", lambda a, b: a > b),
    ("lean_int_dec_ge", lambda a, b: a >= b),
]:
    def _make(op):
        def impl(ctx, args):
            return _compare(ctx, args, op)

        return impl

    BUILTINS[_name] = _make(_op)


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------


def _expect_array(value: Value) -> ArrayObject:
    if not isinstance(value, ArrayObject):
        raise RuntimeError_(f"expected an array, got {value!r}")
    return value


def _unique_array(ctx: RuntimeContext, array: ArrayObject) -> ArrayObject:
    """Return an array that may be mutated in place.

    When the reference count is one the array is reused (this is what makes
    the ``qsort`` benchmark's updates genuinely in-place); otherwise a copy
    is made and the original released.
    """
    if array.rc == 1:
        return array
    copy = ctx.heap.alloc_array(list(array.items))
    for item in copy.items:
        ctx.heap.inc(item)
    ctx.heap.dec(array)
    return copy


@builtin("lean_array_mk")
def _array_mk(ctx, args):
    return ctx.heap.alloc_array([])


@builtin("lean_array_mk_sized")
def _array_mk_sized(ctx, args):
    size, fill = args
    n = int_value(size)
    ctx.release(size)
    items = []
    for _ in range(n):
        ctx.heap.inc(fill)
        items.append(fill)
    ctx.release(fill)
    return ctx.heap.alloc_array(items)


@builtin("lean_array_push")
def _array_push(ctx, args):
    array, value = args
    array = _unique_array(ctx, _expect_array(array))
    array.items.append(value)
    return array


@builtin("lean_array_get")
def _array_get(ctx, args):
    array, index = args
    array = _expect_array(array)
    i = int_value(index)
    if i < 0 or i >= len(array.items):
        raise RuntimeError_(f"array index {i} out of bounds ({len(array.items)})")
    result = array.items[i]
    ctx.heap.inc(result)
    ctx.release(index)
    ctx.release(array)
    return result


@builtin("lean_array_set")
def _array_set(ctx, args):
    array, index, value = args
    array = _unique_array(ctx, _expect_array(array))
    i = int_value(index)
    if i < 0 or i >= len(array.items):
        raise RuntimeError_(f"array index {i} out of bounds ({len(array.items)})")
    old = array.items[i]
    array.items[i] = value
    ctx.release(old)
    ctx.release(index)
    return array


@builtin("lean_array_size")
def _array_size(ctx, args):
    (array,) = args
    array = _expect_array(array)
    size = len(array.items)
    ctx.release(array)
    return ctx.int_result(size)


@builtin("lean_array_swap")
def _array_swap(ctx, args):
    array, i, j = args
    array = _unique_array(ctx, _expect_array(array))
    a, b = int_value(i), int_value(j)
    n = len(array.items)
    if not (0 <= a < n and 0 <= b < n):
        raise RuntimeError_(f"array swap indices {a}, {b} out of bounds ({n})")
    array.items[a], array.items[b] = array.items[b], array.items[a]
    ctx.release(i)
    ctx.release(j)
    return array


# ---------------------------------------------------------------------------
# Strings and I/O
# ---------------------------------------------------------------------------


@builtin("lean_string_mk")
def _string_mk(ctx, args):
    (value,) = args
    text = value.value if isinstance(value, StringObject) else str(int_value(value))
    ctx.release(value)
    return ctx.heap.alloc_string(text)


@builtin("lean_string_append")
def _string_append(ctx, args):
    a, b = args
    if not isinstance(a, StringObject) or not isinstance(b, StringObject):
        raise RuntimeError_("lean_string_append expects strings")
    result = ctx.heap.alloc_string(a.value + b.value)
    ctx.release(a)
    ctx.release(b)
    return result


@builtin("lean_io_println")
def _io_println(ctx, args):
    (value,) = args
    if isinstance(value, StringObject):
        ctx.output.append(value.value)
    else:
        ctx.output.append(str(int_value(value)))
    ctx.release(value)
    return Enum(0)
