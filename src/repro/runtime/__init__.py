"""The simulated LEAN runtime (``libleanrt`` substitute).

* :mod:`repro.runtime.objects` — boxed/unboxed values and the reference-
  counted heap with leak/double-free detection,
* :mod:`repro.runtime.closures` — closure creation and extension
  (``lean_apply_n`` semantics),
* :mod:`repro.runtime.builtins` — the runtime call table
  (``lean_nat_add``, ``lean_array_push``, ...).
"""

from .builtins import (
    BUILTINS,
    FALSE,
    TRUE,
    RuntimeContext,
    call_builtin,
    is_builtin,
)
from .closures import ApplyOutcome, extend_closure, make_closure
from .objects import (
    NULL_TOKEN,
    ArrayObject,
    BigIntObject,
    ClosureObject,
    CtorObject,
    Enum,
    Heap,
    HeapObject,
    HeapStatistics,
    NullToken,
    RuntimeError_,
    Scalar,
    StringObject,
    Value,
    int_value,
    python_value,
    tag_of,
)

__all__ = [
    "BUILTINS",
    "FALSE",
    "TRUE",
    "RuntimeContext",
    "call_builtin",
    "is_builtin",
    "ApplyOutcome",
    "extend_closure",
    "make_closure",
    "NULL_TOKEN",
    "ArrayObject",
    "BigIntObject",
    "ClosureObject",
    "CtorObject",
    "Enum",
    "Heap",
    "HeapObject",
    "HeapStatistics",
    "NullToken",
    "RuntimeError_",
    "Scalar",
    "StringObject",
    "Value",
    "int_value",
    "python_value",
    "tag_of",
]
