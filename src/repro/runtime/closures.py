"""Closure manipulation helpers (``lean_apply_n`` semantics).

A closure stores a top-level function plus the arguments supplied so far.
Extending a closure either produces a new (larger) closure or, once the
function's arity is reached, a request to invoke the function.  The actual
invocation is performed by whichever interpreter is running; the helpers here
only deal with ownership-correct argument plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .objects import ClosureObject, Heap, RuntimeError_, Value


@dataclass
class ApplyOutcome:
    """Result of extending a closure.

    Exactly one of ``closure`` (still unsaturated) or ``call`` (fn name +
    full argument list, possibly with leftover ``extra`` arguments to apply
    to the call's result) is meaningful.
    """

    closure: Optional[ClosureObject] = None
    call_fn: Optional[str] = None
    call_args: Optional[List[Value]] = None
    extra_args: Optional[List[Value]] = None

    @property
    def is_call(self) -> bool:
        return self.call_fn is not None


def make_closure(heap: Heap, fn_name: str, arity: int, args: List[Value]) -> Value:
    """``lp.pap`` semantics: build a closure holding ``args`` (ownership of
    the arguments transfers into the closure)."""
    if len(args) > arity:
        raise RuntimeError_(
            f"pap of {fn_name}: {len(args)} arguments exceeds arity {arity}"
        )
    return heap.alloc_closure(fn_name, arity, list(args))


def extend_closure(heap: Heap, closure: Value, args: List[Value]) -> ApplyOutcome:
    """``lp.papextend`` semantics.

    Consumes one reference of ``closure`` and ownership of ``args``.  If the
    combined argument list saturates the closure's function, the caller must
    invoke ``call_fn`` with ``call_args`` (and then apply ``extra_args`` to
    its result, if any).  Otherwise a new closure is returned.
    """
    if not isinstance(closure, ClosureObject):
        raise RuntimeError_(f"papextend expects a closure, got {closure!r}")
    if closure.freed:
        raise RuntimeError_("papextend of a freed closure")
    # Copy the stored arguments out, taking fresh references, then release
    # our reference to the closure.  This is correct for shared and unique
    # closures alike.
    stored = list(closure.args)
    for value in stored:
        heap.inc(value)
    heap.dec(closure)
    combined = stored + list(args)
    if len(combined) < closure.arity:
        return ApplyOutcome(
            closure=heap.alloc_closure(closure.fn_name, closure.arity, combined)
        )
    call_args = combined[: closure.arity]
    extra = combined[closure.arity :]
    return ApplyOutcome(
        call_fn=closure.fn_name,
        call_args=call_args,
        extra_args=extra if extra else None,
    )
