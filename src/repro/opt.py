"""``repro-opt``: run a textual pass pipeline over textual IR.

The mlir-opt / xdsl-opt analogue — the tool the per-pass regression tests
and the pipeline-debugging workflow are built on.  Usage::

    python -m repro.opt file.mlir                        # default rgn pipeline
    python -m repro.opt --pipeline "cse,dce" file.mlir
    python -m repro.opt --pipeline "canonicalize{ablate=case-elim}" -
    python -m repro.opt --list-passes
    python -m repro.opt --show-pipeline file.mlir        # spec + fingerprint
    python -m repro.opt --verify-roundtrip file.mlir     # parse(print(m)) check
    python -m repro.opt file.mlir --print-ir-after cse --metrics-json m.json
    python -m repro.opt file.mlir --inject-fault pass.cse:1
    python -m repro.opt --pipeline-from-bundle crash-0123456789ab

Resilience (see ``docs/RESILIENCE.md``): a pass failure writes a crash
reproducer bundle into ``--crash-dir`` (the pre-pass IR, the remaining
pipeline spec, and the re-based fault plan) and prints its path;
``--pipeline-from-bundle`` replays such a bundle byte-identically —
input, pipeline and fault plan all come from the bundle.
``--inject-fault site:N`` arms deterministic fault injection
(``--list-fault-sites`` prints the site catalogue).

The input is generic-form IR as printed by :mod:`repro.ir.printer` (get
some via ``python -m repro program.lean --emit rgn``); the result prints
on stdout (or ``-o``).  Telemetry flags (``--trace-out``,
``--metrics-json``, ``--print-ir-after*``) come for free through
:class:`~repro.rewrite.pass_manager.PassManager` — the exact
instrumentation stack of the in-compiler pipelines.

The default pipeline is the compiler's rgn optimisation spec, so

.. code-block:: shell

    python -m repro program.lean --emit rgn > before.mlir
    python -m repro.opt before.mlir

reproduces the compiler's rgn-opt phase byte-identically.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from .backend.pipeline import PipelineOptions, rgn_pipeline_spec
from .ir.parser import ParseError, parse_module
from .ir.printer import print_module
from .ir.verifier import VerificationError, verify
from .resilience import (
    CrashBundleWriter,
    FaultPlan,
    fault_plan,
    known_sites,
    load_bundle,
)
from .rewrite.registry import (
    PipelineSpecError,
    build_pipeline,
    canonical_pipeline_spec,
    describe_registered_passes,
    pipeline_fingerprint,
)
from .telemetry import (
    MetricsRegistry,
    PrintIRInstrumentation,
    Tracer,
    telemetry_session,
)


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def default_pipeline_spec() -> str:
    """The compiler's rgn optimisation spec under default options."""
    return rgn_pipeline_spec(PipelineOptions())


def _report_crash_bundle(error: BaseException) -> None:
    """Print the bundle path a pass-manager crash handler attached."""
    path = getattr(error, "crash_bundle", None)
    if path:
        print(f"crash bundle: {path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.opt", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "file", nargs="?", default=None,
        help="generic-form IR file ('-' for stdin)",
    )
    parser.add_argument(
        "--pipeline", metavar="SPEC", default=None,
        help="textual pipeline spec, e.g. "
        "\"cse,canonicalize{ablate=case-elim},dce\" "
        "(default: the compiler's rgn optimisation pipeline)",
    )
    parser.add_argument(
        "--list-passes", action="store_true",
        help="list every registered pass (with options) and exit",
    )
    parser.add_argument(
        "--show-pipeline", action="store_true",
        help="print the canonical pipeline spec and its fingerprint, "
        "then exit without reading input",
    )
    parser.add_argument(
        "-o", metavar="PATH", dest="output", default=None,
        help="write the resulting IR to PATH instead of stdout",
    )
    parser.add_argument(
        "--verify-roundtrip", action="store_true",
        help="after running, re-parse the printed result and check the "
        "reprint is byte-identical (printer/parser roundtrip guard)",
    )
    parser.add_argument(
        "--no-verify-each", action="store_true",
        help="skip IR verification after each pass",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print per-pass wall time and rewrite counters",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON of the pipeline run",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write a JSON snapshot of the unified metrics registry",
    )
    parser.add_argument(
        "--print-ir-after", metavar="PASS", action="append", default=[],
        help="print the module's IR after the named pass runs (repeatable)",
    )
    parser.add_argument(
        "--print-ir-after-all", action="store_true",
        help="print the module's IR after every pass",
    )
    parser.add_argument(
        "--inject-fault", metavar="SITE[:N]", action="append", default=[],
        help="raise a deterministic fault at the N-th hit of SITE "
        "(repeatable; see --list-fault-sites)",
    )
    parser.add_argument(
        "--list-fault-sites", action="store_true",
        help="list every fault-injection site and exit",
    )
    parser.add_argument(
        "--crash-dir", metavar="DIR", default=".",
        help="directory crash reproducer bundles are written into "
        "(default: current directory)",
    )
    parser.add_argument(
        "--pipeline-from-bundle", metavar="DIR", default=None,
        help="replay a crash bundle: input IR, pipeline spec, verify-each "
        "setting and fault plan are all read from the bundle directory",
    )
    args = parser.parse_args(argv)

    if args.list_passes:
        print(describe_registered_passes())
        return 0

    if args.list_fault_sites:
        for site, description in sorted(known_sites().items()):
            print(f"{site:24s} {description}")
        return 0

    bundle = None
    fault_specs = list(args.inject_fault)
    if args.pipeline_from_bundle is not None:
        if args.file is not None or args.pipeline is not None:
            parser.error(
                "--pipeline-from-bundle replaces both the input file and "
                "--pipeline"
            )
        try:
            bundle = load_bundle(args.pipeline_from_bundle)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load bundle: {error}", file=sys.stderr)
            return 2
        spec = bundle.pipeline_spec
        # The bundle's faults replay first; extra --inject-fault specs stack.
        fault_specs = list(bundle.faults) + fault_specs
    else:
        spec = (
            args.pipeline if args.pipeline is not None
            else default_pipeline_spec()
        )

    try:
        plan = FaultPlan.parse(fault_specs) if fault_specs else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.show_pipeline:
        try:
            canonical = canonical_pipeline_spec(spec)
        except PipelineSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(canonical)
        print(f"fingerprint: {pipeline_fingerprint(spec)}")
        return 0

    if args.file is None and bundle is None:
        parser.error("an input file is required (use '-' for stdin)")

    instrumentations = []
    if args.print_ir_after or args.print_ir_after_all:
        instrumentations.append(
            PrintIRInstrumentation(
                print_after=tuple(args.print_ir_after),
                print_after_all=args.print_ir_after_all,
            )
        )
    verify_each = (
        bundle.verify_each if bundle is not None else True
    ) and not args.no_verify_each
    try:
        pipeline = build_pipeline(
            spec,
            verify_each=verify_each,
            verbose=args.verbose,
            instrumentations=instrumentations,
            crash_handler=CrashBundleWriter(args.crash_dir),
        )
    except PipelineSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if bundle is not None:
        text = bundle.input_ir
    else:
        try:
            text = _read_input(args.file)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    telemetry_on = bool(args.trace_out or args.metrics_json)
    tracer = Tracer() if telemetry_on else None
    registry = MetricsRegistry() if telemetry_on else None
    scope = (
        telemetry_session(tracer=tracer, metrics=registry)
        if telemetry_on
        else nullcontext()
    )
    try:
        with scope:
            try:
                with fault_plan(plan):
                    module = parse_module(text)
                    verify(module)
                    pipeline.run(module)
            except (ParseError, VerificationError) as error:
                print(f"error: {error}", file=sys.stderr)
                _report_crash_bundle(error)
                return 1
            except Exception as error:  # pass crash / injected fault / budget
                name = type(error).__name__
                print(f"error: {name}: {error}", file=sys.stderr)
                _report_crash_bundle(error)
                return 1
            result = print_module(module)
    finally:
        if args.trace_out:
            tracer.write_chrome_trace(args.trace_out)
        if args.metrics_json:
            registry.write_json(args.metrics_json)

    if args.verify_roundtrip:
        try:
            reparsed = parse_module(result)
        except ParseError as error:
            print(f"error: roundtrip parse failed: {error}", file=sys.stderr)
            return 1
        reprint = print_module(reparsed)
        if reprint != result:
            print(
                "error: roundtrip print is not byte-identical",
                file=sys.stderr,
            )
            return 1

    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result)
    else:
        print(result, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
