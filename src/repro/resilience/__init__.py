"""Resilience layer: crash reproducer bundles, deterministic fault
injection, budgets and graceful degradation.

The compiler's failure-path machinery (see ``docs/RESILIENCE.md``):

* :mod:`~repro.resilience.faults` — seeded, deterministic fault injection
  at named sites (``--inject-fault site:N``) so every recovery path in the
  stack can be exercised on demand,
* :mod:`~repro.resilience.budgets` — wall-clock and step budgets on the
  rewrite drivers and all four execution engines
  (:class:`ExecutionBudgetExceeded` instead of a hang),
* :mod:`~repro.resilience.bundle` — MLIR-style crash reproducer bundles
  (pre-pass IR + remaining pipeline spec + environment + telemetry),
  replayable via ``python -m repro.opt --pipeline-from-bundle``,
* :mod:`~repro.resilience.bisect` — re-runs a bundle pass by pass to
  isolate the first faulty pass (and for pattern passes the faulty
  pattern), appending a minimal one-pass reproducer to the bundle.

Every recovery the stack performs (VM → tree fallback, worklist →
rescan retry, cache quarantine + clean recompile) counts under the
``resilience.*`` metric namespace.
"""

from .budgets import (
    BudgetExceeded,
    ExecutionBudget,
    ExecutionBudgetExceeded,
    RewriteBudgetExceeded,
)
from .bundle import CrashBundle, CrashBundleWriter, load_bundle
from .bisect import bisect_bundle
from .faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    fault_hit,
    fault_plan,
    known_sites,
)

__all__ = [
    "BudgetExceeded",
    "ExecutionBudget",
    "ExecutionBudgetExceeded",
    "RewriteBudgetExceeded",
    "CrashBundle",
    "CrashBundleWriter",
    "load_bundle",
    "bisect_bundle",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "fault_hit",
    "fault_plan",
    "known_sites",
]
