"""Crash reproducer bundles.

When a pass raises, ``verify_each`` rejects its output, or a budget
trips, the pass manager hands the failure to a :class:`CrashBundleWriter`
which serialises everything needed to replay it — MLIR's pass-pipeline
crash reproducers (Lattner et al., CGO 2021) adapted to this stack's
textual IR + pipeline-spec grammar:

``crash-<sha12>/``
    ``bundle.json``
        Schema ``repro/crash-bundle/v1``: the failing pass, the remaining
        canonical pipeline spec, the fault plan re-based to the bundle's
        starting point, ``verify_each``, the exception, an environment
        snapshot and the telemetry metrics at failure time.
    ``input.mlir``
        Textual IR as it stood *before* the failing pass ran.
    ``pipeline.txt``
        The remaining pipeline spec (failing pass first) — what
        ``python -m repro.opt --pipeline-from-bundle <dir>`` replays.
    ``error.txt``
        The exception type and message.
    ``minimal.mlir`` / ``minimal-pipeline.txt``
        Appended by :func:`~repro.resilience.bisect.bisect_bundle`: the IR
        immediately before the first faulty pass plus that single pass's
        spec — the one-pass reproducer.

The directory name is content-addressed (sha256 of IR + spec + error,
twelve hex digits), so the same crash lands in the same directory and
re-crashes do not pile up duplicates.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..telemetry import get_metrics

BUNDLE_SCHEMA = "repro/crash-bundle/v1"

BUNDLE_JSON = "bundle.json"
INPUT_IR = "input.mlir"
PIPELINE_TXT = "pipeline.txt"
ERROR_TXT = "error.txt"
MINIMAL_IR = "minimal.mlir"
MINIMAL_PIPELINE_TXT = "minimal-pipeline.txt"


@dataclass
class CrashBundle:
    """A loaded crash reproducer bundle (see :func:`load_bundle`)."""

    path: Path
    input_ir: str
    pipeline_spec: str
    failing_pass: str
    error_type: str
    error_message: str
    #: ``site:N`` fault specs re-based to the bundle's starting point
    #: (empty when the crash was organic, not injected).
    faults: List[str]
    verify_each: bool
    environment: Dict[str, str]
    metrics: Dict[str, Union[int, float]]
    #: Bisection result, if :func:`bisect_bundle` has run: keys
    #: ``failing_pass`` and (for pattern passes) ``failing_pattern``.
    bisect: Optional[Dict[str, Optional[str]]] = None

    @property
    def minimal_ir(self) -> Optional[str]:
        minimal = self.path / MINIMAL_IR
        if minimal.exists():
            return minimal.read_text(encoding="utf-8")
        return None

    @property
    def minimal_pipeline_spec(self) -> Optional[str]:
        minimal = self.path / MINIMAL_PIPELINE_TXT
        if minimal.exists():
            return minimal.read_text(encoding="utf-8").strip()
        return None


def load_bundle(path: Union[str, Path]) -> CrashBundle:
    """Load a crash bundle directory written by :class:`CrashBundleWriter`."""
    bundle_dir = Path(path)
    manifest_path = bundle_dir / BUNDLE_JSON
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{bundle_dir} is not a crash bundle (no {BUNDLE_JSON})"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    schema = manifest.get("schema")
    if schema != BUNDLE_SCHEMA:
        raise ValueError(
            f"unsupported crash-bundle schema {schema!r} in {manifest_path} "
            f"(expected {BUNDLE_SCHEMA!r})"
        )
    return CrashBundle(
        path=bundle_dir,
        input_ir=(bundle_dir / INPUT_IR).read_text(encoding="utf-8"),
        pipeline_spec=(
            (bundle_dir / PIPELINE_TXT).read_text(encoding="utf-8").strip()
        ),
        failing_pass=manifest["failing_pass"],
        error_type=manifest["error"]["type"],
        error_message=manifest["error"]["message"],
        faults=list(manifest.get("faults", [])),
        verify_each=bool(manifest.get("verify_each", True)),
        environment=dict(manifest.get("environment", {})),
        metrics=dict(manifest.get("metrics", {})),
        bisect=manifest.get("bisect"),
    )


def _environment_snapshot() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "recursion_limit": str(sys.getrecursionlimit()),
    }


class CrashBundleWriter:
    """Writes crash reproducer bundles under a base directory.

    One writer serves one pipeline run; the pass manager calls
    :meth:`on_crash` with the failure context and re-raises the original
    exception after the bundle is on disk.  With ``bisect=True`` (the
    default) the writer immediately re-runs the bundle through
    :func:`~repro.resilience.bisect.bisect_bundle` to pin down the first
    faulty pass — guarded, so a bisection failure never masks the crash
    being reported.
    """

    def __init__(self, base_dir: Union[str, Path], *, bisect: bool = True):
        self.base_dir = Path(base_dir)
        self.bisect = bisect
        #: Paths of every bundle this writer produced, in order.
        self.written: List[Path] = []

    def on_crash(
        self,
        *,
        pre_pass_ir: str,
        remaining_spec: str,
        failing_pass: str,
        error: BaseException,
        fault_specs: Optional[List[str]] = None,
        verify_each: bool = True,
    ) -> Path:
        """Write one bundle; returns its directory."""
        error_text = f"{type(error).__name__}: {error}"
        digest = sha256(
            "\x00".join([pre_pass_ir, remaining_spec, error_text]).encode(
                "utf-8"
            )
        ).hexdigest()[:12]
        bundle_dir = self.base_dir / f"crash-{digest}"
        bundle_dir.mkdir(parents=True, exist_ok=True)

        (bundle_dir / INPUT_IR).write_text(pre_pass_ir, encoding="utf-8")
        (bundle_dir / PIPELINE_TXT).write_text(
            remaining_spec + "\n", encoding="utf-8"
        )
        (bundle_dir / ERROR_TXT).write_text(error_text + "\n", encoding="utf-8")
        manifest = {
            "schema": BUNDLE_SCHEMA,
            "failing_pass": failing_pass,
            "pipeline": remaining_spec,
            "faults": list(fault_specs or []),
            "verify_each": verify_each,
            "error": {
                "type": type(error).__name__,
                "message": str(error),
                "failing_pattern": getattr(error, "failing_pattern", None),
            },
            "environment": _environment_snapshot(),
            "metrics": get_metrics().snapshot(),
        }
        (bundle_dir / BUNDLE_JSON).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

        registry = get_metrics()
        if registry.enabled:
            registry.bump("resilience.bundles.written")

        if self.bisect:
            from .bisect import bisect_bundle

            try:
                bisect_bundle(bundle_dir)
            except Exception:
                # Bisection is best-effort diagnosis; the bundle itself is
                # already complete and replayable without it.
                pass

        self.written.append(bundle_dir)
        return bundle_dir
