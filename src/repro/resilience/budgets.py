"""Wall-clock and step budgets for rewriting and execution.

An :class:`ExecutionBudget` bounds one run of an execution engine: *steps*
(control transfers — calls, jumps, branches — plus VM instructions at a
coarse granularity) and *wall-clock seconds*.  All four engines — the
λpure reference interpreter, the λrc interpreter, the CFG tree-walker and
the bytecode VM — charge the budget at every control transfer, so a
diverging program raises :class:`ExecutionBudgetExceeded` instead of
hanging (or permanently riding ``sys.setrecursionlimit``).

The rewrite drivers have an analogous wall-clock budget: exceeding it
raises :class:`RewriteBudgetExceeded`, which the pattern-driver passes
treat exactly like
:class:`~repro.rewrite.driver.NonConvergenceError` — eligible for the
one-shot rescan retry, and a crash bundle if the retry fails too.

Budget trips count as ``resilience.budget.trips`` in the active metrics
registry.
"""

from __future__ import annotations

import time
from typing import Optional

from ..telemetry import get_metrics


class BudgetExceeded(RuntimeError):
    """Base class of every budget trip."""


class ExecutionBudgetExceeded(BudgetExceeded):
    """An execution engine exceeded its step or wall-clock budget."""


class RewriteBudgetExceeded(BudgetExceeded):
    """A rewrite driver exceeded its wall-clock budget mid-fixpoint.

    The pattern-driver passes handle it like a non-convergence: one rescan
    retry, then a crash bundle.
    """


#: How many steps pass between wall-clock reads (a power of two minus one,
#: used as a mask — ``monotonic()`` per step would dominate small runs).
_CLOCK_CHECK_MASK = 1023


class ExecutionBudget:
    """A per-run step + wall-clock budget shared by all four engines.

    One instance covers one ``run_main``: :meth:`start` arms the deadline,
    :meth:`charge` is called at control transfers.  The object is reusable
    (``start`` resets the counters), but not concurrently.
    """

    __slots__ = ("max_steps", "max_seconds", "steps", "_deadline")

    def __init__(
        self,
        *,
        max_steps: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ):
        if max_steps is None and max_seconds is None:
            raise ValueError("an ExecutionBudget needs max_steps or max_seconds")
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.steps = 0
        self._deadline: Optional[float] = None

    def start(self) -> "ExecutionBudget":
        self.steps = 0
        self._deadline = (
            time.monotonic() + self.max_seconds
            if self.max_seconds is not None
            else None
        )
        return self

    def _trip(self, reason: str) -> None:
        registry = get_metrics()
        if registry.enabled:
            registry.bump("resilience.budget.trips")
        raise ExecutionBudgetExceeded(
            f"execution budget exceeded: {reason} "
            f"(steps={self.steps}, max_steps={self.max_steps}, "
            f"max_seconds={self.max_seconds})"
        )

    def charge(self, amount: int = 1) -> None:
        """Count ``amount`` steps; trip if a bound is exceeded."""
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            self._trip(f"more than {self.max_steps} steps")
        if (
            self._deadline is not None
            and not (self.steps & _CLOCK_CHECK_MASK)
            and time.monotonic() > self._deadline
        ):
            self._trip(f"ran longer than {self.max_seconds}s")


def make_execution_budget(
    seconds: Optional[float], steps: Optional[int]
) -> Optional[ExecutionBudget]:
    """An :class:`ExecutionBudget` for the given bounds, or None for none."""
    if seconds is None and steps is None:
        return None
    return ExecutionBudget(max_steps=steps, max_seconds=seconds)
