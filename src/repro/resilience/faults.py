"""Deterministic fault injection at named sites.

A :class:`FaultPlan` maps *site names* to 1-based trigger counts: the plan
``{"pass.cse": 2}`` (spelled ``pass.cse:2`` on the command line) raises an
:class:`InjectedFault` at the second time the ``pass.cse`` site is hit and
never again.  Hits are counted per process-global plan, so a run with a
given plan is fully deterministic — the same compile hits the same sites
in the same order every time, which is what lets a crash bundle record the
*remaining* plan and replay the identical failure from the bundle's
pre-pass IR (see :mod:`repro.resilience.bundle`).

Injection sites live in every layer with a recovery story:

* ``pass.<name>`` — one hit when the pass starts (from the pass manager)
  plus one hit per successful pattern application for
  :class:`~repro.rewrite.driver.PatternRewritePass` subclasses (from the
  rewrite driver, which blames the applied pattern on the raised fault),
* ``verify`` — the IR verifier entry,
* ``cache.frontend`` / ``cache.bytecode`` / ``cache.incremental`` — the
  hit paths of the three session caches (recovered by recompute /
  quarantine),
* ``vm.dispatch`` — the VM's function dispatch (recovered by the
  tree-walker fallback),
* ``driver.worklist`` — the worklist rewrite engine's entry (recovered by
  the one-shot rescan retry).

The catalogue is drift-tested against ``docs/RESILIENCE.md`` by
``tests/test_resilience.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from ..telemetry import get_metrics

#: Injection sites that are not derived from the pass registry, with the
#: recovery each one exercises.
STATIC_SITES: Dict[str, str] = {
    "verify": "IR verifier entry (crash bundle on verify-each rejection)",
    "cache.frontend": "frontend-cache hit path (recovered: clean re-parse)",
    "cache.bytecode": "bytecode-cache hit path (recovered: clean recompile)",
    "cache.incremental": (
        "incremental rgn-opt cache hit path "
        "(recovered: quarantine + clean recompile)"
    ),
    "vm.dispatch": "VM function dispatch (recovered: tree-walker fallback)",
    "driver.worklist": (
        "worklist rewrite engine entry (recovered: one rescan retry)"
    ),
}


def known_sites() -> Dict[str, str]:
    """Every valid injection site name -> description.

    ``pass.<name>`` sites are derived from the pass registry, so a newly
    registered pass automatically grows an injection site.
    """
    # Imported lazily: the registry imports the pass manager, which imports
    # this module.
    from ..rewrite.registry import registered_passes

    sites = dict(STATIC_SITES)
    for name, registered in registered_passes().items():
        sites[f"pass.{name}"] = (
            f"inside the {name} pass (crash bundle, bisectable)"
        )
    return sites


class InjectedFault(RuntimeError):
    """A deterministic fault raised by :func:`fault_hit`."""

    def __init__(
        self, site: str, occurrence: int, *, pattern: Optional[str] = None
    ):
        detail = f" during pattern {pattern}" if pattern else ""
        super().__init__(
            f"injected fault at site {site!r} (hit {occurrence}){detail}"
        )
        self.site = site
        self.occurrence = occurrence
        #: Pattern class name blamed by the rewrite driver, when the fault
        #: fired inside a pattern application.
        self.failing_pattern = pattern


class FaultPlan:
    """Site name -> 1-based trigger count, with per-site hit accounting."""

    def __init__(self, triggers: Dict[str, int]):
        for site, count in triggers.items():
            if count < 1:
                raise ValueError(
                    f"fault trigger for {site!r} must be >= 1, got {count}"
                )
        self.triggers: Dict[str, int] = dict(triggers)
        self.hits: Dict[str, int] = {site: 0 for site in triggers}
        self.fired: Dict[str, bool] = {site: False for site in triggers}

    @classmethod
    def parse(
        cls, specs: Sequence[str], *, validate_sites: bool = True
    ) -> "FaultPlan":
        """Parse ``site:N`` strings (bare ``site`` means ``site:1``)."""
        triggers: Dict[str, int] = {}
        for raw in specs:
            site, sep, count_text = raw.partition(":")
            site = site.strip()
            if not site:
                raise ValueError(f"malformed fault spec {raw!r}")
            try:
                count = int(count_text) if sep else 1
            except ValueError:
                raise ValueError(
                    f"malformed fault count in {raw!r} (expected site:N)"
                ) from None
            if validate_sites and site not in known_sites():
                known = ", ".join(sorted(known_sites()))
                raise ValueError(
                    f"unknown fault site {site!r} (known sites: {known})"
                )
            triggers[site] = count
        return cls(triggers)

    def spec_strings(self) -> List[str]:
        """The plan as ``site:N`` strings (sorted, for serialisation)."""
        return [f"{site}:{count}" for site, count in sorted(self.triggers.items())]

    def snapshot_hits(self) -> Dict[str, int]:
        return dict(self.hits)

    def remaining_specs(self, baseline: Dict[str, int]) -> List[str]:
        """The plan re-based onto a run starting from ``baseline`` hits.

        A crash bundle snapshots the hit counts at the failing pass's entry;
        replaying the bundle restarts every site counter at zero, so the
        recorded plan must count down only the hits that were still to come.
        Sites that already fired (or would trigger at a non-positive count)
        are dropped.
        """
        specs = []
        for site, count in sorted(self.triggers.items()):
            remaining = count - baseline.get(site, 0)
            if remaining >= 1:
                specs.append(f"{site}:{remaining}")
        return specs

    def note_hit(self, site: str) -> Optional[int]:
        """Count one hit of ``site``; return the occurrence if it fires."""
        if site not in self.triggers:
            return None
        self.hits[site] += 1
        if not self.fired[site] and self.hits[site] >= self.triggers[site]:
            self.fired[site] = True
            return self.hits[site]
        return None


#: The process-global active plan (None almost always — the fast path of
#: :func:`fault_hit` is a single global read).
_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


@contextmanager
def fault_plan(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` as the active fault plan for the duration."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def fault_hit(site: str, *, pattern: Optional[str] = None) -> None:
    """Count a hit of ``site``; raise :class:`InjectedFault` if it fires."""
    plan = _ACTIVE
    if plan is None:
        return
    occurrence = plan.note_hit(site)
    if occurrence is None:
        return
    registry = get_metrics()
    if registry.enabled:
        registry.bump("resilience.faults.injected")
    raise InjectedFault(site, occurrence, pattern=pattern)
