"""Pass-level bisection of crash reproducer bundles.

:func:`bisect_bundle` replays a bundle one pass at a time: parse the
bundle's pre-failure IR, re-arm its recorded fault plan, then run each
pipeline-spec invocation through its own single-pass
:class:`~repro.rewrite.pass_manager.PassManager` — the exact sequence of
pass entries, pattern applications and verifier runs the monolithic
replay performs, so injected faults fire at identical points.  The first
invocation that fails is the faulty pass; for a
:class:`~repro.rewrite.driver.PatternRewritePass` the rewrite driver
blames the applied pattern on the exception (``failing_pattern``), giving
pattern-level resolution.

The result is appended to the bundle:

* ``minimal.mlir`` — the IR immediately before the faulty pass,
* ``minimal-pipeline.txt`` — that single pass's canonical spec,
* a ``bisect`` section in ``bundle.json`` with the faulty pass, the
  blamed pattern (when any) and the fault specs re-based so the one-pass
  reproducer still fires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..telemetry import get_metrics
from .bundle import (
    BUNDLE_JSON,
    MINIMAL_IR,
    MINIMAL_PIPELINE_TXT,
    load_bundle,
)
from .faults import FaultPlan, fault_plan


def bisect_bundle(path: Union[str, Path]) -> Dict[str, Optional[str]]:
    """Isolate the first faulty pass of a crash bundle.

    Returns the ``bisect`` record (also written into ``bundle.json``):
    ``failing_pass`` (registered name), ``failing_spec`` (that pass's
    canonical one-pass spec), ``failing_pattern`` (pattern class name for
    pattern-driver passes, else None) and ``faults`` (re-based ``site:N``
    specs for the one-pass reproducer).  ``failing_pass`` is None when no
    pass fails under replay — a non-deterministic or environmental crash,
    recorded as such.
    """
    # Imported lazily: the pass manager imports the fault-injection sites
    # from this package, so a module-level registry import here would cycle.
    from ..ir.parser import parse_module
    from ..ir.printer import print_module
    from ..rewrite.registry import build_pipeline, resolve_pipeline

    bundle_dir = Path(path)
    bundle = load_bundle(bundle_dir)
    module = parse_module(bundle.input_ir)
    plan = FaultPlan.parse(bundle.faults) if bundle.faults else None

    record: Dict[str, Optional[str]] = {
        "failing_pass": None,
        "failing_spec": None,
        "failing_pattern": None,
        "faults": [],
    }
    with fault_plan(plan):
        for registered, invocation in resolve_pipeline(bundle.pipeline_spec):
            pre_ir = print_module(module)
            hits = plan.snapshot_hits() if plan is not None else {}
            manager = build_pipeline(
                invocation.spec(), verify_each=bundle.verify_each
            )
            try:
                manager.run(module)
            except Exception as error:
                record["failing_pass"] = registered.name
                record["failing_spec"] = invocation.spec()
                record["failing_pattern"] = getattr(
                    error, "failing_pattern", None
                )
                record["faults"] = (
                    plan.remaining_specs(hits) if plan is not None else []
                )
                (bundle_dir / MINIMAL_IR).write_text(pre_ir, encoding="utf-8")
                (bundle_dir / MINIMAL_PIPELINE_TXT).write_text(
                    invocation.spec() + "\n", encoding="utf-8"
                )
                break

    manifest_path = bundle_dir / BUNDLE_JSON
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["bisect"] = record
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    registry = get_metrics()
    if registry.enabled:
        registry.bump("resilience.bisect.runs")
    return record
