"""Command-line driver: compile and run a mini-LEAN program.

Usage::

    python -m repro program.lean
    python -m repro program.lean --variant rc-opt+reuse --metrics
    python -m repro program.lean --variant baseline --rc-mode opt
    python -m repro program.lean --emit c          # print the C artifact
    python -m repro program.lean --emit lp         # print the lp module
    python -m repro program.lean --emit cfg        # print the final CFG module
    python -m repro program.lean --execution-engine tree   # tree-walking oracle
    python -m repro - < program.lean               # read from stdin

The ``--variant`` flag selects the pipeline configuration: ``baseline`` is
the λrc-interpreting leanc analogue; everything else runs the lp+rgn MLIR
pipeline (``default``, the Figure-10 ablations ``simplifier`` / ``rgn`` /
``none``, and the RC-optimisation ablations ``rc-naive`` / ``rc-opt`` /
``rc-opt+reuse``).

Exit codes tell failure layers apart (see ``docs/RESILIENCE.md``):

* 0 — success,
* 2 — usage errors (bad flags, unreadable input),
* 3 — frontend errors (lexing, parsing, type checking),
* 4 — pipeline errors (a pass crashed or verification rejected its
  output; a crash reproducer bundle is written into ``--crash-dir`` and
  its path printed),
* 5 — execution errors (runtime faults, tripped ``--budget-*`` limits),
* 1 — anything unexpected.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from .backend.pipeline import (
    FIGURE10_VARIANTS,
    RC_VARIANTS,
    BaselineCompiler,
    CompilationSession,
    MlirCompiler,
    PipelineOptions,
)
from .interp.bytecode import (
    DISPATCH_MODES,
    EXECUTION_ENGINES,
    FUSED_OPCODE_BASES,
)
from .ir.printer import print_module
from .lean import LexError, ParseError, TypeError_
from .resilience import FaultPlan, fault_plan
from .rewrite.driver import ENGINES
from .telemetry import MetricsRegistry, Tracer, telemetry_session

VARIANTS = ("default", "baseline", *FIGURE10_VARIANTS, *RC_VARIANTS)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _print_run_report(result, *, show_metrics: bool) -> None:
    for line in result.output:
        print(line)
    print(f"result: {result.value}")
    if not show_metrics:
        return
    metrics = result.metrics
    heap = result.heap_stats
    print(
        f"[metrics] cost={metrics.total_cost()} "
        f"operations={metrics.total_operations()} "
        f"wall={metrics.wall_time_seconds * 1e3:.2f}ms"
    )
    print(
        f"[heap] allocations={heap['allocations']} frees={heap['frees']} "
        f"peak_live={heap['peak_live']} reuses={heap.get('reuses', 0)}"
    )
    rc_events = metrics.counts.get("rc", 0) + metrics.counts.get("reuse", 0)
    print(
        f"[rc] rc_ops={metrics.counts.get('rc', 0)} "
        f"reuse_ops={metrics.counts.get('reuse', 0)} "
        f"rc_events={rc_events}"
    )


def _print_exec_stats(registry: MetricsRegistry, *, unfused: bool = False) -> None:
    """Sorted VM instruction-frequency table from ``vm.instr.freq.*``.

    With ``unfused`` every superinstruction row is decomposed back into
    its base opcodes (one fused execution counts once for each
    constituent), so the table is comparable across ``--no-fusion`` runs.
    """
    prefix = "vm.instr.freq."
    frequencies = {
        name[len(prefix):]: count
        for name, count in registry.snapshot().items()
        if name.startswith(prefix)
    }
    if unfused:
        decomposed: dict = {}
        for name, count in frequencies.items():
            for base in FUSED_OPCODE_BASES.get(name, (name,)):
                decomposed[base] = decomposed.get(base, 0) + count
        frequencies = decomposed
    total = sum(frequencies.values())
    print(f"[exec-stats] {total} instructions across "
          f"{len(frequencies)} opcodes")
    print(f"  {'opcode':<16s} {'count':>10s} {'share':>7s}")
    for name, count in sorted(
        frequencies.items(), key=lambda item: (-item[1], item[0])
    ):
        share = 100.0 * count / total if total else 0.0
        print(f"  {name:<16s} {count:>10d} {share:>6.1f}%")


def _print_rc_report(report) -> None:
    if report is None or report.mode == "naive":
        return
    print(
        f"[rc_opt] mode={report.mode} "
        f"borrowed_params={report.borrowed_parameters} "
        f"fused_pairs={report.fusion.cancelled_pairs} "
        f"merged_ops={report.fusion.merged_ops} "
        f"reuse_pairs={report.reuse.reuse_pairs}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("file", help="mini-LEAN source file ('-' for stdin)")
    parser.add_argument(
        "--variant", choices=VARIANTS, default="default",
        help="pipeline variant to compile with (default: %(default)s)",
    )
    parser.add_argument(
        "--rc-mode", choices=("naive", "opt", "opt+reuse"), default=None,
        help="RC optimisation level (overrides the level implied by --variant)",
    )
    parser.add_argument(
        "--rewrite-engine", choices=ENGINES, default=None,
        help="pattern-rewrite fixpoint engine for the lp+rgn pipeline "
        "(worklist is the default; rescan is the differential baseline)",
    )
    parser.add_argument(
        "--execution-engine", choices=EXECUTION_ENGINES, default="vm",
        help="how the compiled program executes: the register-bytecode VM "
        "(default) or the tree-walking oracle interpreter",
    )
    parser.add_argument(
        "--dispatch", choices=DISPATCH_MODES, default="threaded",
        help="VM dispatch strategy: direct-threaded closures (default) or "
        "the tuple-switch oracle loop (vm engine only)",
    )
    parser.add_argument(
        "--no-fusion", action="store_true",
        help="disable the superinstruction peephole when compiling bytecode "
        "(vm engine only; the fused VM is the default)",
    )
    parser.add_argument(
        "--emit", choices=("c", "lp", "rgn", "rgn-opt", "cfg"), default=None,
        help="print a compilation artifact instead of running (rgn is the "
        "module entering the rgn optimisations, rgn-opt the module leaving "
        "them — ready for replay through python -m repro.opt)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the cost model, heap and RC statistics after the result",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print per-pass wall time and rewrite counters while compiling",
    )
    parser.add_argument(
        "--no-check-heap", action="store_true",
        help="skip the zero-leak / no-double-free heap check at exit",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace-event JSON (load in Perfetto / "
        "chrome://tracing) covering the whole compile and run",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write a JSON snapshot of the unified metrics registry",
    )
    parser.add_argument(
        "--exec-stats", action="store_true",
        help="print a sorted VM instruction-frequency table after the run "
        "(requires --execution-engine vm)",
    )
    parser.add_argument(
        "--unfused", action="store_true",
        help="decompose superinstruction rows in the --exec-stats table "
        "back into their base opcodes",
    )
    parser.add_argument(
        "--print-ir-after", metavar="PASS", action="append", default=[],
        help="print the module's IR after the named pass runs "
        "(repeatable; lp+rgn pipeline only)",
    )
    parser.add_argument(
        "--print-ir-after-all", action="store_true",
        help="print the module's IR after every pass (lp+rgn pipeline only)",
    )
    parser.add_argument(
        "--inject-fault", metavar="SITE[:N]", action="append", default=[],
        help="raise a deterministic fault at the N-th hit of SITE "
        "(repeatable; python -m repro.opt --list-fault-sites lists them)",
    )
    parser.add_argument(
        "--crash-dir", metavar="DIR", default=".",
        help="directory crash reproducer bundles are written into when a "
        "pipeline pass fails (default: current directory)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, metavar="S", default=None,
        help="wall-clock execution budget; exceeding it exits 5 instead "
        "of running forever",
    )
    parser.add_argument(
        "--budget-steps", type=int, metavar="N", default=None,
        help="execution step budget (calls and branches); exceeding it "
        "exits 5",
    )
    args = parser.parse_args(argv)

    if args.exec_stats and args.execution_engine != "vm":
        print(
            "error: --exec-stats needs the bytecode VM "
            "(--execution-engine vm)",
            file=sys.stderr,
        )
        return 2
    if args.unfused and not args.exec_stats:
        print(
            "error: --unfused only makes sense with --exec-stats",
            file=sys.stderr,
        )
        return 2

    try:
        source = _read_source(args.file)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        plan = FaultPlan.parse(args.inject_fault) if args.inject_fault else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    telemetry_on = bool(args.trace_out or args.metrics_json or args.exec_stats)
    tracer = Tracer() if telemetry_on else None
    registry = MetricsRegistry() if telemetry_on else None
    scope = (
        telemetry_session(tracer=tracer, metrics=registry)
        if telemetry_on
        else nullcontext()
    )
    try:
        with scope, fault_plan(plan):
            code = _dispatch(args, source)
    finally:
        # Trace and metrics snapshots are written even when the compile or
        # run failed — the failing trace is usually the interesting one.
        if args.trace_out:
            tracer.write_chrome_trace(args.trace_out)
        if args.metrics_json:
            registry.write_json(args.metrics_json)
    if code == 0 and args.exec_stats:
        _print_exec_stats(registry, unfused=args.unfused)
    return code


def _report_crash_bundle(error: BaseException) -> None:
    """Print the bundle path the pipeline's crash handler attached."""
    path = getattr(error, "crash_bundle", None)
    if path:
        print(f"crash bundle: {path}", file=sys.stderr)


def _dispatch(args, source: str) -> int:
    """Compile, optionally emit, and run — inside any telemetry scope.

    The compile and execute phases are separate ``try`` blocks so the exit
    code names the failing layer: 3 for frontend errors, 4 for pipeline
    errors (after the crash-bundle path is reported), 5 for execution
    errors.
    """
    check_heap = not args.no_check_heap
    # One compilation session per CLI invocation: repeated compiles of the
    # same source (e.g. driver scripts importing main) share frontend work.
    session = CompilationSession()
    if args.variant == "baseline":
        compiler = BaselineCompiler(
            rc_mode=args.rc_mode or "naive",
            session=session,
            execution_engine=args.execution_engine,
            dispatch=args.dispatch,
            superinstructions=not args.no_fusion,
            execution_budget_seconds=args.budget_seconds,
            execution_budget_steps=args.budget_steps,
        )
    else:
        options = (
            PipelineOptions()
            if args.variant == "default"
            else PipelineOptions.variant(args.variant)
        )
        if args.rc_mode is not None:
            options.rc_mode = args.rc_mode
        if args.rewrite_engine is not None:
            options.rewrite_engine = args.rewrite_engine
        options.execution_engine = args.execution_engine
        options.dispatch = args.dispatch
        options.superinstructions = not args.no_fusion
        options.verbose_passes = args.verbose
        options.print_ir_after = tuple(args.print_ir_after)
        options.print_ir_after_all = args.print_ir_after_all
        options.crash_bundle_dir = args.crash_dir
        options.execution_budget_seconds = args.budget_seconds
        options.execution_budget_steps = args.budget_steps
        if args.emit in ("rgn", "rgn-opt"):
            options.capture_ir = (args.emit,)
        compiler = MlirCompiler(options, session=session)

    try:
        artifacts = compiler.compile(source)
    except (LexError, ParseError, TypeError_) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"error: {error}", file=sys.stderr)
        _report_crash_bundle(error)
        return 4

    if args.variant == "baseline":
        if args.emit:
            if args.emit != "c":
                print(
                    "error: the baseline pipeline only emits C",
                    file=sys.stderr,
                )
                return 2
            print(artifacts.c_source)
            return 0
        executable = artifacts.rc_program
    else:
        if args.emit == "c":
            print(
                "error: the lp+rgn pipeline does not emit C; "
                "use --variant baseline",
                file=sys.stderr,
            )
            return 2
        if args.emit == "lp":
            print(print_module(artifacts.lp_module))
            return 0
        if args.emit in ("rgn", "rgn-opt"):
            captured = artifacts.captured_ir.get(args.emit)
            if captured is None:
                print(
                    "error: this variant does not run the rgn "
                    "optimisations, so there is no rgn-opt module",
                    file=sys.stderr,
                )
                return 2
            print(captured, end="")
            return 0
        if args.emit == "cfg":
            print(print_module(artifacts.cfg_module))
            return 0
        executable = artifacts.cfg_module
    if args.verbose:
        _print_rc_report(artifacts.rc_report)

    try:
        result = compiler.execute(executable, check_heap=check_heap)
    except Exception as error:  # noqa: BLE001 - CLI boundary
        print(f"error: {error}", file=sys.stderr)
        return 5

    _print_run_report(result, show_metrics=args.metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
