"""Built-in environment of the mini-LEAN frontend.

Mirrors the slice of LEAN's prelude the benchmarks rely on: ``Bool`` as an
inductive type, ``Nat``/``Int`` arithmetic (provided through operators and a
few named helpers) and the ``Array`` primitives used by the ``qsort``
benchmark.  The named built-ins lower to LEAN runtime calls
(``lean_nat_add``, ``lean_array_push``, ...), exactly as λrc does.
"""

from __future__ import annotations

from typing import Dict, Tuple

from . import ast

#: Bool is an ordinary inductive: ``false`` has tag 0 and ``true`` has tag 1,
#: matching LEAN's representation (and making ``if`` a two-way case).
BOOL_FALSE_TAG = 0
BOOL_TRUE_TAG = 1


def builtin_inductives():
    """Inductive declarations that are always in scope."""
    return [
        ast.InductiveDecl(
            "Bool",
            [
                ast.ConstructorDecl("false", []),
                ast.ConstructorDecl("true", []),
            ],
        ),
    ]


def _nat() -> ast.LeanType:
    return ast.NatType()


def _int() -> ast.LeanType:
    return ast.IntType()


def _bool() -> ast.LeanType:
    return ast.BoolType()


def _nat_array() -> ast.LeanType:
    return ast.ArrayType(ast.NatType())


#: Named built-in functions: surface name -> curried type.
BUILTIN_FUNCTIONS: Dict[str, ast.LeanType] = {
    # Nat helpers (operators cover the common cases).
    "Nat.add": ast.fun_type([_nat(), _nat()], _nat()),
    "Nat.sub": ast.fun_type([_nat(), _nat()], _nat()),
    "Nat.mul": ast.fun_type([_nat(), _nat()], _nat()),
    "Nat.div": ast.fun_type([_nat(), _nat()], _nat()),
    "Nat.mod": ast.fun_type([_nat(), _nat()], _nat()),
    "Nat.decEq": ast.fun_type([_nat(), _nat()], _bool()),
    "Nat.decLt": ast.fun_type([_nat(), _nat()], _bool()),
    "Nat.decLe": ast.fun_type([_nat(), _nat()], _bool()),
    "Nat.toInt": ast.fun_type([_nat()], _int()),
    # Int helpers.
    "Int.add": ast.fun_type([_int(), _int()], _int()),
    "Int.sub": ast.fun_type([_int(), _int()], _int()),
    "Int.mul": ast.fun_type([_int(), _int()], _int()),
    "Int.div": ast.fun_type([_int(), _int()], _int()),
    "Int.mod": ast.fun_type([_int(), _int()], _int()),
    "Int.neg": ast.fun_type([_int()], _int()),
    "Int.toNat": ast.fun_type([_int()], _nat()),
    # Array primitives (monomorphic over Nat, which is what qsort needs).
    "Array.empty": _nat_array(),
    "Array.push": ast.fun_type([_nat_array(), _nat()], _nat_array()),
    "Array.get": ast.fun_type([_nat_array(), _nat()], _nat()),
    "Array.set": ast.fun_type([_nat_array(), _nat(), _nat()], _nat_array()),
    "Array.size": ast.fun_type([_nat_array()], _nat()),
    "Array.swap": ast.fun_type([_nat_array(), _nat(), _nat()], _nat_array()),
    "Array.mkArray": ast.fun_type([_nat(), _nat()], _nat_array()),
}

#: Lowering table: surface built-in name -> (runtime call, arity).
BUILTIN_RUNTIME_CALLS: Dict[str, Tuple[str, int]] = {
    "Nat.add": ("lean_nat_add", 2),
    "Nat.sub": ("lean_nat_sub", 2),
    "Nat.mul": ("lean_nat_mul", 2),
    "Nat.div": ("lean_nat_div", 2),
    "Nat.mod": ("lean_nat_mod", 2),
    "Nat.decEq": ("lean_nat_dec_eq", 2),
    "Nat.decLt": ("lean_nat_dec_lt", 2),
    "Nat.decLe": ("lean_nat_dec_le", 2),
    "Nat.toInt": ("lean_nat_to_int", 1),
    "Int.add": ("lean_int_add", 2),
    "Int.sub": ("lean_int_sub", 2),
    "Int.mul": ("lean_int_mul", 2),
    "Int.div": ("lean_int_div", 2),
    "Int.mod": ("lean_int_mod", 2),
    "Int.neg": ("lean_int_neg", 1),
    "Int.toNat": ("lean_int_to_nat", 1),
    "Array.empty": ("lean_array_mk", 0),
    "Array.push": ("lean_array_push", 2),
    "Array.get": ("lean_array_get", 2),
    "Array.set": ("lean_array_set", 3),
    "Array.size": ("lean_array_size", 1),
    "Array.swap": ("lean_array_swap", 3),
    "Array.mkArray": ("lean_array_mk_sized", 2),
}

#: Operator lowering per operand type ("Nat" or "Int").
OPERATOR_RUNTIME_CALLS: Dict[Tuple[str, str], str] = {
    ("+", "Nat"): "lean_nat_add",
    ("-", "Nat"): "lean_nat_sub",
    ("*", "Nat"): "lean_nat_mul",
    ("/", "Nat"): "lean_nat_div",
    ("%", "Nat"): "lean_nat_mod",
    ("==", "Nat"): "lean_nat_dec_eq",
    ("!=", "Nat"): "lean_nat_dec_ne",
    ("<", "Nat"): "lean_nat_dec_lt",
    ("<=", "Nat"): "lean_nat_dec_le",
    (">", "Nat"): "lean_nat_dec_gt",
    (">=", "Nat"): "lean_nat_dec_ge",
    ("+", "Int"): "lean_int_add",
    ("-", "Int"): "lean_int_sub",
    ("*", "Int"): "lean_int_mul",
    ("/", "Int"): "lean_int_div",
    ("%", "Int"): "lean_int_mod",
    ("==", "Int"): "lean_int_dec_eq",
    ("!=", "Int"): "lean_int_dec_ne",
    ("<", "Int"): "lean_int_dec_lt",
    ("<=", "Int"): "lean_int_dec_le",
    (">", "Int"): "lean_int_dec_gt",
    (">=", "Int"): "lean_int_dec_ge",
}
