"""The mini-LEAN frontend: lexer, parser, type checker and prelude.

Typical usage::

    from repro.lean import parse_program, check_program

    program = parse_program(source_text)
    env = check_program(program)
"""

from . import ast
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_expression, parse_program
from .prelude import (
    BOOL_FALSE_TAG,
    BOOL_TRUE_TAG,
    BUILTIN_FUNCTIONS,
    BUILTIN_RUNTIME_CALLS,
    OPERATOR_RUNTIME_CALLS,
    builtin_inductives,
)
from .typecheck import GlobalEnv, TypeChecker, TypeError_, check_program

__all__ = [
    "ast",
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "parse_expression",
    "parse_program",
    "BOOL_FALSE_TAG",
    "BOOL_TRUE_TAG",
    "BUILTIN_FUNCTIONS",
    "BUILTIN_RUNTIME_CALLS",
    "OPERATOR_RUNTIME_CALLS",
    "builtin_inductives",
    "GlobalEnv",
    "TypeChecker",
    "TypeError_",
    "check_program",
]
