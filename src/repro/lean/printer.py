"""Surface-syntax pretty-printer for mini-LEAN.

The inverse of :mod:`repro.lean.parser`: turns a surface
:class:`~repro.lean.ast.Program` back into source text that re-parses to a
structurally identical AST (``parse(print(parse(s)))`` equals
``parse(s)``, typed-AST equality — guarded by ``tests/test_fuzz.py``).

This is what makes fuzzing counterexamples durable: a shrunk generated
program is pretty-printed here, saved under ``tests/corpus/`` and replayed
forever as an ordinary ``.lean`` file.

Parenthesisation is deliberately conservative.  The parser's layout rules
require nested ``match`` / ``if`` / ``fun`` / ``let`` sub-expressions to be
parenthesised; instead of tracking the exact contexts where parentheses are
mandatory, every sub-expression that is not an atom (a name, a non-negative
literal, ``true``/``false``) is wrapped.  Parentheses are invisible to the
AST, so the round-trip property is unaffected.

One asymmetry is inherited from the grammar: a *non-negative*
:class:`~repro.lean.ast.IntLit` has no surface spelling (``5`` always
parses as a ``NatLit``; the parser only builds ``IntLit`` for ``-n``).
Parser-produced and generator-produced ASTs never contain one, and the
printer raises rather than silently printing a literal that would re-parse
to a different node.
"""

from __future__ import annotations

from typing import List

from . import ast


class PrintError(Exception):
    """Raised on an AST shape that has no faithful surface spelling."""


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def print_type(t: ast.LeanType) -> str:
    """Surface spelling of a type (function arrows right-associated)."""
    if isinstance(t, ast.FunType):
        param = print_type(t.param)
        if isinstance(t.param, ast.FunType):
            param = f"({param})"
        return f"{param} -> {print_type(t.result)}"
    if isinstance(t, ast.ArrayType):
        element = print_type(t.element)
        if isinstance(t.element, (ast.FunType, ast.ArrayType)):
            element = f"({element})"
        return f"Array {element}"
    return str(t)


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


def print_pattern(pattern: ast.Pattern) -> str:
    if isinstance(pattern, ast.PWild):
        return "_"
    if isinstance(pattern, ast.PVar):
        return pattern.name
    if isinstance(pattern, ast.PLit):
        if pattern.value < 0:
            raise PrintError("negative literal patterns have no surface form")
        return str(pattern.value)
    if isinstance(pattern, ast.PBool):
        return "true" if pattern.value else "false"
    if isinstance(pattern, ast.PCtor):
        if not pattern.subpatterns:
            return pattern.ctor
        subs = " ".join(print_pattern(p) for p in pattern.subpatterns)
        return f"({pattern.ctor} {subs})"
    raise PrintError(f"cannot print pattern {pattern!r}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _atom(expr: ast.Expr, indent: str) -> str:
    """Print ``expr`` so it parses as one application atom."""
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.NatLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    return f"({print_expr(expr, indent)})"


def print_expr(expr: ast.Expr, indent: str = "") -> str:
    """Surface spelling of an expression (conservatively parenthesised)."""
    if isinstance(expr, (ast.Var, ast.NatLit, ast.BoolLit)):
        return _atom(expr, indent)
    if isinstance(expr, ast.IntLit):
        if expr.value >= 0:
            raise PrintError(
                f"IntLit({expr.value}) has no surface spelling (a non-negative "
                "literal re-parses as a NatLit); use NatLit in an Int context "
                "or Int.toNat/Nat.toInt conversions"
            )
        return str(expr.value)
    if isinstance(expr, ast.App):
        parts = [_atom(expr.fn, indent)]
        parts.extend(_atom(arg, indent) for arg in expr.args)
        return " ".join(parts)
    if isinstance(expr, ast.BinOp):
        return f"{_atom(expr.lhs, indent)} {expr.op} {_atom(expr.rhs, indent)}"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{_atom(expr.operand, indent)}"
    if isinstance(expr, ast.Let):
        annotation = (
            f" : {print_type(expr.annotation)}" if expr.annotation is not None else ""
        )
        value = _atom(expr.value, indent)
        body = print_expr(expr.body, indent)
        return f"let {expr.name}{annotation} := {value};\n{indent}{body}"
    if isinstance(expr, ast.If):
        cond = _atom(expr.cond, indent)
        then_branch = _atom(expr.then_branch, indent)
        else_branch = _atom(expr.else_branch, indent)
        return f"if {cond} then {then_branch} else {else_branch}"
    if isinstance(expr, ast.Lambda):
        params = " ".join(f"({n} : {print_type(t)})" for n, t in expr.params)
        return f"fun {params} => {_atom(expr.body, indent)}"
    if isinstance(expr, ast.Match):
        inner = indent + "  "
        scrutinees = ", ".join(_atom(s, indent) for s in expr.scrutinees)
        lines = [f"match {scrutinees} with"]
        for arm in expr.arms:
            patterns = ", ".join(print_pattern(p) for p in arm.patterns)
            lines.append(f"{indent}| {patterns} => {_atom(arm.body, inner)}")
        return "\n".join(lines)
    raise PrintError(f"cannot print expression {expr!r}")


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def print_inductive(decl: ast.InductiveDecl) -> str:
    lines = [f"inductive {decl.name} where"]
    for ctor in decl.constructors:
        fields = "".join(f" ({n} : {print_type(t)})" for n, t in ctor.fields)
        lines.append(f"| {ctor.name}{fields}")
    return "\n".join(lines)


def print_def(decl: ast.DefDecl) -> str:
    prefix = "partial def" if decl.is_partial else "def"
    params = "".join(f" ({n} : {print_type(t)})" for n, t in decl.params)
    head = f"{prefix} {decl.name}{params} : {print_type(decl.return_type)} :="
    body = print_expr(decl.body, "  ")
    return f"{head}\n  {body}"


def print_program(program: ast.Program) -> str:
    """Re-parseable source text of a surface program."""
    parts: List[str] = [print_inductive(i) for i in program.inductives]
    parts.extend(print_def(d) for d in program.defs)
    return "\n\n".join(parts) + "\n"
