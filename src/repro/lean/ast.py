"""Surface AST and types of the mini-LEAN frontend.

The frontend is a deliberately small, strict, monomorphic functional language
that produces exactly the λpure constructs the paper's backend consumes:
inductive data types, (nested) pattern matching, higher-order functions with
partial application, and let/if expressions.  It substitutes for the LEAN4
frontend + elaborator, whose output (λpure) is type erased anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class LeanType:
    """Base class of surface types."""

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        # Structural, over exactly the fields __eq__ compares: equal types
        # must hash equal regardless of how their field values are shaped
        # (nested types included — LeanType fields hash recursively).
        items = tuple(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in sorted(self.__dict__.items())
        )
        return hash((type(self).__name__, items))


class NatType(LeanType):
    """Arbitrary precision natural numbers."""

    def __str__(self):
        return "Nat"


class IntType(LeanType):
    """Arbitrary precision integers."""

    def __str__(self):
        return "Int"


class BoolType(LeanType):
    """Booleans (an inductive with constructors ``false`` / ``true``)."""

    def __str__(self):
        return "Bool"


class UnitType(LeanType):
    """The unit type."""

    def __str__(self):
        return "Unit"


@dataclass(frozen=True)
class ArrayType(LeanType):
    """Dynamic arrays of boxed values (LEAN's ``Array``)."""

    element: "LeanType"

    def __str__(self):
        return f"Array {self.element}"


@dataclass(frozen=True)
class DataType(LeanType):
    """A user-declared inductive type, referenced by name."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class FunType(LeanType):
    """Function type ``a -> b`` (curried, right associative)."""

    param: "LeanType"
    result: "LeanType"

    def __str__(self):
        param = f"({self.param})" if isinstance(self.param, FunType) else str(self.param)
        return f"{param} -> {self.result}"


def fun_type(params: List[LeanType], result: LeanType) -> LeanType:
    """Build the curried function type ``p1 -> p2 -> ... -> result``."""
    t = result
    for p in reversed(params):
        t = FunType(p, t)
    return t


def uncurry(t: LeanType) -> Tuple[List[LeanType], LeanType]:
    """Split a curried function type into parameter list and final result."""
    params: List[LeanType] = []
    while isinstance(t, FunType):
        params.append(t.param)
        t = t.result
    return params, t


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of surface expressions."""

    #: Filled in by the type checker.
    inferred_type: Optional[LeanType] = field(default=None, init=False, repr=False)


@dataclass
class Var(Expr):
    """A variable or (possibly qualified) global name."""

    name: str

    def __str__(self):
        return self.name


@dataclass
class NatLit(Expr):
    """A non-negative integer literal (``Nat`` unless context says ``Int``)."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass
class IntLit(Expr):
    """A (possibly negative) integer literal of type ``Int``."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass
class BoolLit(Expr):
    """``true`` / ``false``."""

    value: bool

    def __str__(self):
        return "true" if self.value else "false"


@dataclass
class App(Expr):
    """Application ``fn arg1 arg2 ...`` (possibly partial)."""

    fn: Expr
    args: List[Expr]

    def __str__(self):
        return "(" + " ".join(str(e) for e in [self.fn, *self.args]) + ")"


@dataclass
class BinOp(Expr):
    """A binary operator application, desugared during lowering."""

    op: str
    lhs: Expr
    rhs: Expr

    def __str__(self):
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass
class UnaryOp(Expr):
    """Unary negation."""

    op: str
    operand: Expr

    def __str__(self):
        return f"({self.op}{self.operand})"


@dataclass
class Let(Expr):
    """``let name := value; body``."""

    name: str
    value: Expr
    body: Expr
    annotation: Optional[LeanType] = None

    def __str__(self):
        return f"let {self.name} := {self.value};\n{self.body}"


@dataclass
class If(Expr):
    """``if cond then then_branch else else_branch``."""

    cond: Expr
    then_branch: Expr
    else_branch: Expr

    def __str__(self):
        return f"if {self.cond} then {self.then_branch} else {self.else_branch}"


@dataclass
class Lambda(Expr):
    """``fun (x : T) ... => body``."""

    params: List[Tuple[str, LeanType]]
    body: Expr

    def __str__(self):
        params = " ".join(f"({n} : {t})" for n, t in self.params)
        return f"(fun {params} => {self.body})"


# -- patterns ----------------------------------------------------------------


@dataclass
class Pattern:
    """Base class of match patterns."""


@dataclass
class PVar(Pattern):
    """Bind the scrutinee to a name."""

    name: str

    def __str__(self):
        return self.name


@dataclass
class PWild(Pattern):
    """``_`` — match anything, bind nothing."""

    def __str__(self):
        return "_"


@dataclass
class PCtor(Pattern):
    """Constructor pattern ``Type.ctor p1 p2 ...`` (sub-patterns allowed)."""

    ctor: str
    subpatterns: List[Pattern] = field(default_factory=list)

    def __str__(self):
        if not self.subpatterns:
            return self.ctor
        return "(" + " ".join([self.ctor, *[str(p) for p in self.subpatterns]]) + ")"


@dataclass
class PLit(Pattern):
    """Integer literal pattern."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass
class PBool(Pattern):
    """``true`` / ``false`` pattern."""

    value: bool

    def __str__(self):
        return "true" if self.value else "false"


@dataclass
class MatchArm:
    """One ``| p1, p2, ... => body`` arm."""

    patterns: List[Pattern]
    body: Expr


@dataclass
class Match(Expr):
    """``match e1, e2, ... with arms``."""

    scrutinees: List[Expr]
    arms: List[MatchArm]

    def __str__(self):
        scrs = ", ".join(str(s) for s in self.scrutinees)
        arms = "\n".join(
            "| " + ", ".join(str(p) for p in a.patterns) + " => " + str(a.body)
            for a in self.arms
        )
        return f"match {scrs} with\n{arms}"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class ConstructorDecl:
    """One constructor of an inductive declaration."""

    name: str
    fields: List[Tuple[str, LeanType]] = field(default_factory=list)


@dataclass
class InductiveDecl:
    """``inductive Name where | ctor (field : T) ...``."""

    name: str
    constructors: List[ConstructorDecl] = field(default_factory=list)


@dataclass
class DefDecl:
    """``def name (p : T) ... : R := body`` (``partial def`` is accepted)."""

    name: str
    params: List[Tuple[str, LeanType]]
    return_type: LeanType
    body: Expr
    is_partial: bool = False

    def type(self) -> LeanType:
        return fun_type([t for _, t in self.params], self.return_type)


@dataclass
class Program:
    """A parsed mini-LEAN source file."""

    inductives: List[InductiveDecl] = field(default_factory=list)
    defs: List[DefDecl] = field(default_factory=list)

    def inductive(self, name: str) -> Optional[InductiveDecl]:
        for ind in self.inductives:
            if ind.name == name:
                return ind
        return None

    def definition(self, name: str) -> Optional[DefDecl]:
        for d in self.defs:
            if d.name == name:
                return d
        return None
