"""A simple monomorphic type checker for mini-LEAN.

The checker is bidirectional-lite: it infers types bottom-up and uses the
expected type to give numeric literals an ``Int`` type where required.  It
annotates every expression's ``inferred_type`` so that the λpure lowering can
select the right runtime routines (``lean_nat_*`` vs ``lean_int_*``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast
from .prelude import BUILTIN_FUNCTIONS, builtin_inductives


class TypeError_(Exception):
    """Raised when a mini-LEAN program fails to type check."""


class ConstructorSignature:
    """Resolved information about a single constructor."""

    def __init__(self, type_name: str, ctor_name: str, tag: int, fields: List[ast.LeanType]):
        self.type_name = type_name
        self.ctor_name = ctor_name
        self.tag = tag
        self.fields = fields

    @property
    def qualified(self) -> str:
        return f"{self.type_name}.{self.ctor_name}"

    @property
    def arity(self) -> int:
        return len(self.fields)


#: Lazily built prelude tables (constructor signatures and inductive lists
#: of the builtin declarations).  The prelude never changes within a
#: process, so every :class:`GlobalEnv` — and hence every compilation in a
#: session — shares one resolved copy instead of re-deriving it per program.
_PRELUDE_TABLES: Optional[
    Tuple[Dict[str, ConstructorSignature], Dict[str, List[ConstructorSignature]]]
] = None


def _prelude_tables():
    global _PRELUDE_TABLES
    if _PRELUDE_TABLES is None:
        constructors: Dict[str, ConstructorSignature] = {}
        inductives: Dict[str, List[ConstructorSignature]] = {}
        for ind in builtin_inductives():
            signatures = []
            for tag, ctor in enumerate(ind.constructors):
                sig = ConstructorSignature(
                    ind.name, ctor.name, tag, [t for _, t in ctor.fields]
                )
                signatures.append(sig)
                constructors[sig.qualified] = sig
            inductives[ind.name] = signatures
        _PRELUDE_TABLES = (constructors, inductives)
    return _PRELUDE_TABLES


class GlobalEnv:
    """Global typing environment: functions, constructors and inductives.

    Prelude-derived structures (builtin function types and constructor
    signatures) are resolved once per process by :func:`_prelude_tables`
    and shared; only the program's own declarations are processed here.
    """

    def __init__(self, program: ast.Program):
        self.program = program
        prelude_constructors, prelude_inductives = _prelude_tables()
        self.functions: Dict[str, ast.LeanType] = dict(BUILTIN_FUNCTIONS)
        self.constructors: Dict[str, ConstructorSignature] = dict(
            prelude_constructors
        )
        self.inductives: Dict[str, List[ConstructorSignature]] = dict(
            prelude_inductives
        )

        for ind in list(program.inductives):
            if ind.name in self.inductives:
                raise TypeError_(f"duplicate inductive {ind.name}")
            signatures = []
            for tag, ctor in enumerate(ind.constructors):
                sig = ConstructorSignature(
                    ind.name, ctor.name, tag, [t for _, t in ctor.fields]
                )
                signatures.append(sig)
                self.constructors[sig.qualified] = sig
            self.inductives[ind.name] = signatures

        for d in program.defs:
            if d.name in self.functions:
                raise TypeError_(f"duplicate definition {d.name}")
            self.functions[d.name] = d.type()

    def constructor(self, qualified: str) -> ConstructorSignature:
        if qualified not in self.constructors:
            raise TypeError_(f"unknown constructor {qualified}")
        return self.constructors[qualified]

    def constructors_of(self, type_name: str) -> List[ConstructorSignature]:
        if type_name not in self.inductives:
            raise TypeError_(f"unknown inductive type {type_name}")
        return self.inductives[type_name]


def _is_numeric(t: ast.LeanType) -> bool:
    return isinstance(t, (ast.NatType, ast.IntType))


class TypeChecker:
    """Checks a surface program and annotates inferred types."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.env = GlobalEnv(program)

    # -- entry point ----------------------------------------------------------
    def check_program(self) -> GlobalEnv:
        for d in self.program.defs:
            locals_: Dict[str, ast.LeanType] = dict(d.params)
            self.check_expr(d.body, d.return_type, locals_)
        return self.env

    # -- expressions -------------------------------------------------------------
    def check_expr(
        self,
        expr: ast.Expr,
        expected: Optional[ast.LeanType],
        locals_: Dict[str, ast.LeanType],
    ) -> ast.LeanType:
        actual = self._infer(expr, expected, locals_)
        if expected is not None and actual != expected:
            raise TypeError_(
                f"type mismatch: expected {expected}, got {actual} in {expr}"
            )
        expr.inferred_type = actual
        return actual

    def _infer(
        self,
        expr: ast.Expr,
        expected: Optional[ast.LeanType],
        locals_: Dict[str, ast.LeanType],
    ) -> ast.LeanType:
        if isinstance(expr, ast.NatLit):
            if isinstance(expected, ast.IntType):
                return ast.IntType()
            return ast.NatType()
        if isinstance(expr, ast.IntLit):
            return ast.IntType()
        if isinstance(expr, ast.BoolLit):
            return ast.BoolType()
        if isinstance(expr, ast.Var):
            return self._infer_name(expr.name, locals_)
        if isinstance(expr, ast.App):
            return self._infer_app(expr, locals_)
        if isinstance(expr, ast.BinOp):
            return self._infer_binop(expr, expected, locals_)
        if isinstance(expr, ast.UnaryOp):
            operand = self.check_expr(expr.operand, ast.IntType(), locals_)
            return operand
        if isinstance(expr, ast.Let):
            value_type = self.check_expr(expr.value, expr.annotation, locals_)
            inner = dict(locals_)
            inner[expr.name] = value_type
            return self.check_expr(expr.body, expected, inner)
        if isinstance(expr, ast.If):
            self.check_expr(expr.cond, ast.BoolType(), locals_)
            then_type = self.check_expr(expr.then_branch, expected, locals_)
            self.check_expr(expr.else_branch, then_type, locals_)
            return then_type
        if isinstance(expr, ast.Lambda):
            inner = dict(locals_)
            for name, t in expr.params:
                inner[name] = t
            result_expected = None
            if isinstance(expected, ast.FunType):
                remaining = expected
                for _ in expr.params:
                    if isinstance(remaining, ast.FunType):
                        remaining = remaining.result
                result_expected = remaining
            body_type = self.check_expr(expr.body, result_expected, inner)
            return ast.fun_type([t for _, t in expr.params], body_type)
        if isinstance(expr, ast.Match):
            return self._infer_match(expr, expected, locals_)
        raise TypeError_(f"cannot type-check expression {expr!r}")

    # -- names --------------------------------------------------------------------
    def _infer_name(self, name: str, locals_: Dict[str, ast.LeanType]) -> ast.LeanType:
        if name in locals_:
            return locals_[name]
        if name in self.env.functions:
            return self.env.functions[name]
        if name in self.env.constructors:
            sig = self.env.constructors[name]
            result: ast.LeanType = (
                ast.BoolType() if sig.type_name == "Bool" else ast.DataType(sig.type_name)
            )
            return ast.fun_type(sig.fields, result)
        raise TypeError_(f"unknown identifier {name}")

    # -- applications -----------------------------------------------------------------
    def _infer_app(self, expr: ast.App, locals_: Dict[str, ast.LeanType]) -> ast.LeanType:
        fn_type = self.check_expr(expr.fn, None, locals_)
        result = fn_type
        for arg in expr.args:
            if not isinstance(result, ast.FunType):
                raise TypeError_(
                    f"too many arguments in application {expr}: "
                    f"{result} is not a function type"
                )
            self.check_expr(arg, result.param, locals_)
            result = result.result
        return result

    # -- operators --------------------------------------------------------------------
    def _infer_binop(
        self,
        expr: ast.BinOp,
        expected: Optional[ast.LeanType],
        locals_: Dict[str, ast.LeanType],
    ) -> ast.LeanType:
        op = expr.op
        if op in ("&&", "||"):
            self.check_expr(expr.lhs, ast.BoolType(), locals_)
            self.check_expr(expr.rhs, ast.BoolType(), locals_)
            return ast.BoolType()
        if op in ("+", "-", "*", "/", "%"):
            hint = expected if expected is not None and _is_numeric(expected) else None
            lhs = self.check_expr(expr.lhs, hint, locals_)
            if not _is_numeric(lhs):
                raise TypeError_(f"operator {op} expects Nat or Int, got {lhs}")
            self.check_expr(expr.rhs, lhs, locals_)
            return lhs
        if op in ("==", "!=", "<", "<=", ">", ">="):
            lhs = self.check_expr(expr.lhs, None, locals_)
            if not _is_numeric(lhs):
                raise TypeError_(
                    f"comparison {op} expects Nat or Int operands, got {lhs}"
                )
            self.check_expr(expr.rhs, lhs, locals_)
            return ast.BoolType()
        raise TypeError_(f"unknown operator {op}")

    # -- match -------------------------------------------------------------------------
    def _infer_match(
        self,
        expr: ast.Match,
        expected: Optional[ast.LeanType],
        locals_: Dict[str, ast.LeanType],
    ) -> ast.LeanType:
        scrutinee_types = [
            self.check_expr(s, None, locals_) for s in expr.scrutinees
        ]
        result_type = expected
        for arm in expr.arms:
            bindings = dict(locals_)
            for pattern, scrutinee_type in zip(arm.patterns, scrutinee_types):
                self._check_pattern(pattern, scrutinee_type, bindings)
            arm_type = self.check_expr(arm.body, result_type, bindings)
            if result_type is None:
                result_type = arm_type
        if result_type is None:
            raise TypeError_("match expression has no arms")
        return result_type

    def _check_pattern(
        self,
        pattern: ast.Pattern,
        scrutinee_type: ast.LeanType,
        bindings: Dict[str, ast.LeanType],
    ) -> None:
        if isinstance(pattern, ast.PWild):
            return
        if isinstance(pattern, ast.PVar):
            bindings[pattern.name] = scrutinee_type
            return
        if isinstance(pattern, ast.PLit):
            if not _is_numeric(scrutinee_type):
                raise TypeError_(
                    f"literal pattern {pattern.value} against non-numeric type "
                    f"{scrutinee_type}"
                )
            return
        if isinstance(pattern, ast.PBool):
            if not isinstance(scrutinee_type, ast.BoolType):
                raise TypeError_(
                    f"boolean pattern against non-Bool type {scrutinee_type}"
                )
            return
        if isinstance(pattern, ast.PCtor):
            sig = self.env.constructor(pattern.ctor)
            if isinstance(scrutinee_type, ast.BoolType):
                expected_name = "Bool"
            elif isinstance(scrutinee_type, ast.DataType):
                expected_name = scrutinee_type.name
            else:
                raise TypeError_(
                    f"constructor pattern {pattern.ctor} against non-inductive "
                    f"type {scrutinee_type}"
                )
            if sig.type_name != expected_name:
                raise TypeError_(
                    f"constructor {pattern.ctor} does not belong to type "
                    f"{expected_name}"
                )
            if len(pattern.subpatterns) != sig.arity:
                raise TypeError_(
                    f"constructor {pattern.ctor} expects {sig.arity} "
                    f"sub-patterns, got {len(pattern.subpatterns)}"
                )
            for sub, field_type in zip(pattern.subpatterns, sig.fields):
                self._check_pattern(sub, field_type, bindings)
            return
        raise TypeError_(f"unknown pattern {pattern!r}")


def check_program(program: ast.Program) -> GlobalEnv:
    """Type-check ``program``; returns the resolved global environment."""
    return TypeChecker(program).check_program()
