"""Lexer for the mini-LEAN surface language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "inductive",
    "where",
    "def",
    "partial",
    "match",
    "with",
    "let",
    "in",
    "if",
    "then",
    "else",
    "fun",
    "true",
    "false",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>--[^\n]*|/-.*?-/)
  | (?P<WS>\s+)
  | (?P<NUMBER>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_!']*(\.[A-Za-z_][A-Za-z0-9_!']*)*)
  | (?P<ARROW>->|=>|:=)
  | (?P<OP>==|!=|<=|>=|&&|\|\||[+\-*/%<>])
  | (?P<PUNCT>[()\[\]{},:;|_])
    """,
    re.VERBOSE | re.DOTALL,
)


class LexError(Exception):
    """Raised on an unrecognised character."""


@dataclass
class Token:
    kind: str  # NUMBER, IDENT, KEYWORD, ARROW, OP, PUNCT, EOF
    text: str
    line: int
    column: int

    def __repr__(self):  # pragma: no cover - debugging helper
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source``, dropping comments and whitespace."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(
                f"unexpected character {source[pos]!r} at line {line}"
            )
        kind = match.lastgroup
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            token_kind = kind
            if kind == "IDENT" and text in KEYWORDS:
                token_kind = "KEYWORD"
            tokens.append(
                Token(token_kind, text, line, match.start() - line_start + 1)
            )
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, 1))
    return tokens
