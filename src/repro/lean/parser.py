"""Recursive-descent parser for the mini-LEAN surface language.

Layout differences from LEAN4 (documented so programs remain unambiguous
without indentation sensitivity):

* nested ``match`` / ``if`` / ``fun`` / ``let`` used as sub-expressions or as
  match-arm bodies containing further arms must be parenthesised,
* a ``let`` binding may optionally be terminated with ``;`` before its body.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised when the source text is not a valid mini-LEAN program."""


_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("==", "!=", "<", "<=", ">", ">="),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # -- token helpers -------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.index]
        self.index += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            raise ParseError(
                f"expected {text or kind}, got {tok.text!r} at line {tok.line}"
            )
        return self.next()

    # -- program --------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.at("EOF"):
            if self.at("KEYWORD", "inductive"):
                program.inductives.append(self.parse_inductive())
            elif self.at("KEYWORD", "def") or self.at("KEYWORD", "partial"):
                program.defs.append(self.parse_def())
            else:
                tok = self.peek()
                raise ParseError(
                    f"expected a declaration, got {tok.text!r} at line {tok.line}"
                )
        return program

    # -- declarations ------------------------------------------------------------
    def parse_inductive(self) -> ast.InductiveDecl:
        self.expect("KEYWORD", "inductive")
        name = self.expect("IDENT").text
        self.accept("KEYWORD", "where")
        constructors: List[ast.ConstructorDecl] = []
        while self.accept("PUNCT", "|"):
            ctor_name = self.expect("IDENT").text
            fields: List[Tuple[str, ast.LeanType]] = []
            while self.at("PUNCT", "("):
                self.next()
                field_names = [self.expect("IDENT").text]
                while self.at("IDENT"):
                    field_names.append(self.next().text)
                self.expect("PUNCT", ":")
                field_type = self.parse_type()
                self.expect("PUNCT", ")")
                for fname in field_names:
                    fields.append((fname, field_type))
            constructors.append(ast.ConstructorDecl(ctor_name, fields))
        if not constructors:
            raise ParseError(f"inductive {name} has no constructors")
        return ast.InductiveDecl(name, constructors)

    def parse_def(self) -> ast.DefDecl:
        is_partial = self.accept("KEYWORD", "partial") is not None
        self.expect("KEYWORD", "def")
        name = self.expect("IDENT").text
        params: List[Tuple[str, ast.LeanType]] = []
        while self.at("PUNCT", "("):
            self.next()
            param_names = [self.expect("IDENT").text]
            while self.at("IDENT"):
                param_names.append(self.next().text)
            self.expect("PUNCT", ":")
            param_type = self.parse_type()
            self.expect("PUNCT", ")")
            for pname in param_names:
                params.append((pname, param_type))
        self.expect("PUNCT", ":")
        return_type = self.parse_type()
        self.expect("ARROW", ":=")
        body = self.parse_expr()
        return ast.DefDecl(name, params, return_type, body, is_partial)

    # -- types -----------------------------------------------------------------------
    def parse_type(self) -> ast.LeanType:
        left = self.parse_atom_type()
        if self.accept("ARROW", "->"):
            right = self.parse_type()
            return ast.FunType(left, right)
        return left

    def parse_atom_type(self) -> ast.LeanType:
        if self.accept("PUNCT", "("):
            inner = self.parse_type()
            self.expect("PUNCT", ")")
            return inner
        tok = self.expect("IDENT")
        name = tok.text
        if name == "Nat":
            return ast.NatType()
        if name == "Int":
            return ast.IntType()
        if name == "Bool":
            return ast.BoolType()
        if name == "Unit":
            return ast.UnitType()
        if name == "Array":
            element = self.parse_atom_type()
            return ast.ArrayType(element)
        return ast.DataType(name)

    # -- expressions -------------------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        if self.at("KEYWORD", "let"):
            return self.parse_let()
        if self.at("KEYWORD", "if"):
            return self.parse_if()
        if self.at("KEYWORD", "match"):
            return self.parse_match()
        if self.at("KEYWORD", "fun"):
            return self.parse_lambda()
        return self.parse_binary(0)

    def parse_let(self) -> ast.Expr:
        self.expect("KEYWORD", "let")
        name = self.expect("IDENT").text
        annotation = None
        if self.accept("PUNCT", ":"):
            annotation = self.parse_type()
        self.expect("ARROW", ":=")
        value = self.parse_expr()
        self.accept("PUNCT", ";")
        self.accept("KEYWORD", "in")
        body = self.parse_expr()
        return ast.Let(name, value, body, annotation)

    def parse_if(self) -> ast.Expr:
        self.expect("KEYWORD", "if")
        cond = self.parse_expr()
        self.expect("KEYWORD", "then")
        then_branch = self.parse_expr()
        self.expect("KEYWORD", "else")
        else_branch = self.parse_expr()
        return ast.If(cond, then_branch, else_branch)

    def parse_lambda(self) -> ast.Expr:
        self.expect("KEYWORD", "fun")
        params: List[Tuple[str, ast.LeanType]] = []
        while self.at("PUNCT", "("):
            self.next()
            names = [self.expect("IDENT").text]
            while self.at("IDENT"):
                names.append(self.next().text)
            self.expect("PUNCT", ":")
            t = self.parse_type()
            self.expect("PUNCT", ")")
            for n in names:
                params.append((n, t))
        if not params:
            raise ParseError(
                f"lambda parameters must be annotated: (x : T), at line "
                f"{self.peek().line}"
            )
        self.expect("ARROW", "=>")
        body = self.parse_expr()
        return ast.Lambda(params, body)

    def parse_match(self) -> ast.Expr:
        self.expect("KEYWORD", "match")
        scrutinees = [self.parse_expr()]
        while self.accept("PUNCT", ","):
            scrutinees.append(self.parse_expr())
        self.expect("KEYWORD", "with")
        arms: List[ast.MatchArm] = []
        while self.accept("PUNCT", "|"):
            patterns = [self.parse_pattern()]
            while self.accept("PUNCT", ","):
                patterns.append(self.parse_pattern())
            self.expect("ARROW", "=>")
            body = self.parse_expr()
            arms.append(ast.MatchArm(patterns, body))
        if not arms:
            raise ParseError("match expression has no arms")
        if any(len(a.patterns) != len(scrutinees) for a in arms):
            raise ParseError("match arm pattern count does not match scrutinees")
        return ast.Match(scrutinees, arms)

    # -- patterns -------------------------------------------------------------------------
    def parse_pattern(self) -> ast.Pattern:
        return self._parse_pattern(allow_args=True)

    def _parse_pattern(self, allow_args: bool) -> ast.Pattern:
        if self.accept("PUNCT", "("):
            inner = self._parse_pattern(allow_args=True)
            self.expect("PUNCT", ")")
            return inner
        if self.at("NUMBER"):
            return ast.PLit(int(self.next().text))
        if self.at("KEYWORD", "true") or self.at("KEYWORD", "false"):
            return ast.PBool(self.next().text == "true")
        tok = self.expect("IDENT")
        name = tok.text
        if name == "_":
            return ast.PWild()
        if "." in name:
            subpatterns: List[ast.Pattern] = []
            if allow_args:
                while self._at_pattern_start():
                    subpatterns.append(self._parse_pattern(allow_args=False))
            return ast.PCtor(name, subpatterns)
        return ast.PVar(name)

    def _at_pattern_start(self) -> bool:
        if self.at("NUMBER") or self.at("PUNCT", "("):
            return True
        if self.at("KEYWORD", "true") or self.at("KEYWORD", "false"):
            return True
        return self.at("IDENT")

    # -- binary operators --------------------------------------------------------------------
    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while self.at("OP") and self.peek().text in ops:
            op = self.next().text
            right = self.parse_binary(level + 1)
            left = ast.BinOp(op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.at("OP", "-"):
            self.next()
            if self.at("NUMBER"):
                return ast.IntLit(-int(self.next().text))
            operand = self.parse_unary()
            return ast.UnaryOp("-", operand)
        return self.parse_application()

    # -- application and atoms -----------------------------------------------------------------
    def parse_application(self) -> ast.Expr:
        fn = self.parse_atom()
        args: List[ast.Expr] = []
        while self._at_atom_start():
            args.append(self.parse_atom())
        if args:
            return ast.App(fn, args)
        return fn

    def _at_atom_start(self) -> bool:
        if self.at("NUMBER") or self.at("PUNCT", "("):
            return True
        if self.at("KEYWORD", "true") or self.at("KEYWORD", "false"):
            return True
        if self.at("IDENT"):
            return True
        return False

    def parse_atom(self) -> ast.Expr:
        if self.at("NUMBER"):
            return ast.NatLit(int(self.next().text))
        if self.accept("KEYWORD", "true"):
            return ast.BoolLit(True)
        if self.accept("KEYWORD", "false"):
            return ast.BoolLit(False)
        if self.accept("PUNCT", "("):
            inner = self.parse_expr()
            self.expect("PUNCT", ")")
            return inner
        if self.at("IDENT"):
            return ast.Var(self.next().text)
        tok = self.peek()
        raise ParseError(
            f"unexpected token {tok.text!r} at line {tok.line}"
        )


def parse_program(source: str) -> ast.Program:
    """Parse a mini-LEAN source file into a surface :class:`~repro.lean.ast.Program`."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (used by tests and the REPL-style examples)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    parser.expect("EOF")
    return expr
