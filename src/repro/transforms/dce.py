"""Dead code elimination.

As the paper observes (§IV-B.1), dead code elimination requires *no changes*
to work with region values: a ``rgn.val`` whose result is never referenced is
never executed, hence dead.  The pass removes any operation that

* carries the :class:`~repro.ir.traits.Pure` trait (no side effects), and
* has no remaining uses of any of its results,

iterating until a fixpoint because removing one op may make its producers
dead as well.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir.core import Operation
from ..ir.traits import Pure
from ..rewrite.pass_manager import FunctionPass


def eliminate_dead_code(
    root: Operation,
    *,
    is_removable: Optional[Callable[[Operation], bool]] = None,
) -> int:
    """Remove dead pure operations nested under ``root``.

    ``is_removable`` optionally restricts which dead ops may be removed
    (used by :class:`DeadRegionEliminationPass` to restrict to ``rgn.val``).
    Returns the number of erased operations.
    """
    erased_total = 0
    while True:
        erased_this_round = 0
        # Walk in reverse so that users are visited (and erased) before
        # producers within one sweep.
        for op in reversed(list(root.walk())):
            if op is root:
                continue
            if op.parent is None:
                continue  # already erased as part of a parent region
            if not op.has_trait(Pure):
                continue
            if not op.results:
                continue
            if op.results_used():
                continue
            if is_removable is not None and not is_removable(op):
                continue
            op.erase()
            erased_this_round += 1
        erased_total += erased_this_round
        if erased_this_round == 0:
            return erased_total


class DeadCodeEliminationPass(FunctionPass):
    """Remove all dead pure operations in every function."""

    name = "dce"

    def run_on_function(self, func) -> None:
        erased = eliminate_dead_code(func)
        self.statistics.bump("ops-erased", erased)
