"""Dead code elimination.

As the paper observes (§IV-B.1), dead code elimination requires *no changes*
to work with region values: a ``rgn.val`` whose result is never referenced is
never executed, hence dead.  The pass removes any operation that

* carries the :class:`~repro.ir.traits.Pure` trait (no side effects), and
* has no remaining uses of any of its results,

iterating until a fixpoint because removing one op may make its producers
dead as well.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir.core import Operation
from ..ir.traits import Pure
from ..rewrite.pass_manager import FunctionPass
from ..rewrite.registry import register_pass


def eliminate_dead_code(
    root: Operation,
    *,
    is_removable: Optional[Callable[[Operation], bool]] = None,
) -> int:
    """Remove dead pure operations nested under ``root``.

    ``is_removable`` optionally restricts which dead ops may be removed
    (used by :class:`DeadRegionEliminationPass` to restrict to ``rgn.val``).
    Returns the number of erased operations.

    Like the pattern driver, this is worklist-driven rather than
    sweep-to-fixpoint: the IR is walked once (users before producers), and
    erasing an op requeues only the producers of the values it — or anything
    nested inside it — used, since those are the only ops that can newly
    become dead.
    """
    erased_total = 0
    # Seed in pre-order; popping from the end then visits users before the
    # producers they reference.
    stack = [op for op in root.walk() if op is not root]
    while stack:
        op = stack.pop()
        if op.erased or op.parent is None:
            continue
        if not op.has_trait(Pure) or not op.results or op.results_used():
            continue
        if is_removable is not None and not is_removable(op):
            continue
        # Erasing releases every use held by the whole nested subtree, so
        # any producer referenced from inside may become dead.
        producers = set()
        for sub in op.walk():
            for operand in sub.operands:
                owner = operand.owner_op()
                if owner is not None:
                    producers.add(owner)
        op.erase()
        erased_total += 1
        for producer in producers:
            if not producer.erased:
                stack.append(producer)
    return erased_total


@register_pass
class DeadCodeEliminationPass(FunctionPass):
    """Remove all dead pure operations in every function."""

    name = "dce"

    def run_on_function(self, func) -> None:
        erased = eliminate_dead_code(func)
        self.statistics.bump("ops-erased", erased)
