"""Global Region Numbering (the paper's §IV-B.2).

Classical global value numbering assigns a number to every SSA value such
that two values with equal numbers compute the same result.  The paper
extends this to *regions*: for straight-line (single-block) regions the value
number is a rolling hash of the value numbers of all instructions within the
region; two regions have the same number iff their instruction sequences have
identical value numbers in identical order.

Merging two ``rgn.val`` operations with equal numbers is the region analogue
of CSE: redundant computations across branches of control flow are
identified, after which common-branch elimination can fold the surrounding
``select`` / ``rgn.switch`` away (Figure in §IV-B.2, steps B → C → D).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..dialects.rgn import ValOp
from ..ir.core import Block, Operation, Region, Value
from ..ir.traits import Pure
from ..rewrite.pass_manager import FunctionPass


class ValueNumbering:
    """Assigns structural value numbers to SSA values.

    Values produced by pure, region-free operations receive numbers derived
    from the operation name, attributes and operand numbers; all other values
    (block arguments, results of impure operations, function arguments)
    receive unique opaque numbers.
    """

    def __init__(self):
        self._numbers: Dict[Value, Hashable] = {}
        self._expression_table: Dict[Tuple, Hashable] = {}
        self._next_opaque = 0

    def _fresh(self) -> Hashable:
        self._next_opaque += 1
        return ("opaque", self._next_opaque)

    def number_of(self, value: Value) -> Hashable:
        if value in self._numbers:
            return self._numbers[value]
        op = value.owner_op()
        if op is None or not op.has_trait(Pure) or op.regions:
            number: Hashable = self._fresh()
        else:
            key = (
                op.name,
                tuple(sorted((k, str(v)) for k, v in op.attributes.items())),
                tuple(self.number_of(o) for o in op.operands),
                op.results.index(value),
            )
            number = self._expression_table.setdefault(key, ("expr",) + key)
        self._numbers[value] = number
        return number


def region_value_number(
    region: Region, numbering: Optional[ValueNumbering] = None
) -> Optional[Tuple]:
    """Value number (fingerprint) of a straight-line region.

    Returns None for regions that are not single-block — the paper restricts
    region numbering to straight-line regions, which is not limiting because
    high-level control flow is expressed via nested ``rgn`` values rather
    than multi-block regions.
    """
    numbering = numbering if numbering is not None else ValueNumbering()
    if len(region.blocks) != 1:
        return None
    block = region.blocks[0]
    local: Dict[Value, Hashable] = {}
    for i, arg in enumerate(block.arguments):
        local[arg] = ("arg", i, str(arg.type))

    def operand_key(value: Value) -> Hashable:
        if value in local:
            return local[value]
        return ("outer", numbering.number_of(value))

    fingerprint = []
    for op_index, op in enumerate(block):
        nested = []
        for nested_region in op.regions:
            inner = region_value_number(nested_region, numbering)
            if inner is None:
                return None
            nested.append(inner)
        entry = (
            op.name,
            tuple(sorted((k, str(v)) for k, v in op.attributes.items())),
            tuple(operand_key(o) for o in op.operands),
            tuple(nested),
            tuple(str(r.type) for r in op.results),
        )
        fingerprint.append(entry)
        for r in op.results:
            local[r] = ("local", op_index, r.index)
    arg_signature = tuple(str(a.type) for a in block.arguments)
    return (arg_signature, tuple(fingerprint))


class RegionGVNPass(FunctionPass):
    """Merge ``rgn.val`` operations whose regions have equal value numbers.

    Only values defined in the same block are merged (the earlier definition
    trivially dominates the later one), which covers the pattern produced by
    the lp → rgn lowering where all arms of one case statement become
    adjacent ``rgn.val`` definitions.
    """

    name = "region-gvn"

    def run_on_function(self, func) -> None:
        merged = 0
        numbering = ValueNumbering()
        for block in self._all_blocks(func):
            merged += self._run_on_block(block, numbering)
        self.statistics.bump("regions-merged", merged)

    def _all_blocks(self, func):
        blocks = []
        for op in func.walk():
            for region in op.regions:
                blocks.extend(region.blocks)
        return blocks

    def _run_on_block(self, block: Block, numbering: ValueNumbering) -> int:
        seen: Dict[Tuple, Operation] = {}
        merged = 0
        # Block iteration captures the next link before yielding, so erasing
        # the current op (the only mutation below) is safe without a copy.
        for op in block:
            if not isinstance(op, ValOp):
                continue
            self.statistics.bump_meter("regions-scanned")
            fingerprint = region_value_number(op.body_region, numbering)
            if fingerprint is None:
                continue
            existing = seen.get(fingerprint)
            if existing is None:
                seen[fingerprint] = op
                continue
            op.replace_all_uses_with(existing)
            op.erase()
            merged += 1
        return merged
