"""Global Region Numbering (the paper's §IV-B.2), memoised.

Classical global value numbering assigns a number to every SSA value such
that two values with equal numbers compute the same result.  The paper
extends this to *regions*: for straight-line (single-block) regions the value
number is a rolling hash of the value numbers of all instructions within the
region; two regions have the same number iff their instruction sequences have
identical value numbers in identical order.

Merging two ``rgn.val`` operations with equal numbers is the region analogue
of CSE: redundant computations across branches of control flow are
identified, after which common-branch elimination can fold the surrounding
``select`` / ``rgn.switch`` away (Figure in §IV-B.2, steps B → C → D).

Fingerprint memoisation
-----------------------

Region values nest, and the pass scans every block — so the naive
formulation (:func:`region_value_number`, kept as the differential
reference) refingerprints each region once per enclosing ``rgn.val``: a
region at nesting depth *d* is hashed *d* times.  :class:`RegionFingerprinter`
computes fingerprints bottom-up instead, memoised per :class:`Region`
identity, so each region is hashed exactly once — until a mutation
notification invalidates precisely the chain of regions enclosing the
mutated op (see :meth:`RegionFingerprinter.invalidate`).  Per-op attribute
keys and type strings are interned on first use for the same reason: the
sort-and-stringify work is paid once per op, not once per hash.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..dialects.rgn import ValOp
from ..ir.core import Block, Operation, Region, Value
from ..ir.traits import Pure
from ..ir.types import Type
from ..rewrite.pass_manager import FunctionPass
from ..rewrite.registry import register_pass

#: Interned ``str(type)`` strings, keyed by the (structurally hashed) type.
#: Types are immutable value objects, so the table never invalidates.
_TYPE_STRS: Dict[Type, str] = {}


def _type_str(type_: Type) -> str:
    cached = _TYPE_STRS.get(type_)
    if cached is None:
        cached = _TYPE_STRS[type_] = str(type_)
    return cached


class ValueNumbering:
    """Assigns structural value numbers to SSA values.

    Values produced by pure, region-free operations receive numbers derived
    from the operation name, attributes and operand numbers; all other values
    (block arguments, results of impure operations, function arguments)
    receive unique opaque numbers.

    The per-op attribute key (``sorted`` + ``str`` over ``op.attributes``)
    is cached on first use via :meth:`attribute_key`; it is shared with the
    region fingerprinter and invalidated together with the fingerprint cache.
    """

    def __init__(self):
        self._numbers: Dict[Value, Hashable] = {}
        self._expression_table: Dict[Tuple, Hashable] = {}
        self._attr_keys: Dict[Operation, Tuple] = {}
        self._next_opaque = 0

    def _fresh(self) -> Hashable:
        self._next_opaque += 1
        return ("opaque", self._next_opaque)

    def preset(self, value: Value, number: Hashable) -> None:
        """Pin the number of ``value`` before any query sees it.

        Opaque numbers are assigned in encounter order, so fingerprints
        taken with a fresh numbering are only comparable within one request
        stream.  Pre-seeding every value with a deterministic number (the
        incremental-recompilation cache seeds positional numbers from a
        pre-order walk) makes fingerprints comparable *across* compiles.
        """
        self._numbers[value] = number

    def attribute_key(self, op: Operation) -> Tuple:
        """The sorted ``(name, str(attr))`` key of ``op``, computed once."""
        key = self._attr_keys.get(op)
        if key is None:
            key = tuple(sorted((k, str(v)) for k, v in op.attributes.items()))
            self._attr_keys[op] = key
        return key

    def drop_attribute_key(self, op: Operation) -> None:
        """Invalidate the cached attribute key of ``op`` (mutation hook)."""
        self._attr_keys.pop(op, None)

    def number_of(self, value: Value) -> Hashable:
        if value in self._numbers:
            return self._numbers[value]
        op = value.owner_op()
        if op is None or not op.has_trait(Pure) or op.regions:
            number: Hashable = self._fresh()
        else:
            key = (
                op.name,
                self.attribute_key(op),
                tuple(self.number_of(o) for o in op.operands),
                op.results.index(value),
            )
            number = self._expression_table.setdefault(key, ("expr",) + key)
        self._numbers[value] = number
        return number


def region_value_number(
    region: Region, numbering: Optional[ValueNumbering] = None
) -> Optional[Tuple]:
    """Value number (fingerprint) of a straight-line region — *uncached*.

    This is the reference formulation: it refingerprints every nested region
    recursively on each call.  The pass uses the memoised
    :class:`RegionFingerprinter` instead; this function survives as the
    differential oracle (two regions merge iff their reference fingerprints
    under a shared numbering are equal) and for one-off queries in tests.

    Returns None for regions that are not single-block — the paper restricts
    region numbering to straight-line regions, which is not limiting because
    high-level control flow is expressed via nested ``rgn`` values rather
    than multi-block regions.
    """
    numbering = numbering if numbering is not None else ValueNumbering()
    if len(region.blocks) != 1:
        return None
    block = region.blocks[0]
    local: Dict[Value, Hashable] = {}
    for i, arg in enumerate(block.arguments):
        local[arg] = ("arg", i, _type_str(arg.type))

    def operand_key(value: Value) -> Hashable:
        if value in local:
            return local[value]
        return ("outer", numbering.number_of(value))

    fingerprint = []
    for op_index, op in enumerate(block):
        nested = []
        for nested_region in op.regions:
            inner = region_value_number(nested_region, numbering)
            if inner is None:
                return None
            nested.append(inner)
        entry = (
            op.name,
            numbering.attribute_key(op),
            tuple(operand_key(o) for o in op.operands),
            tuple(nested),
            tuple(_type_str(r.type) for r in op.results),
        )
        fingerprint.append(entry)
        for r in op.results:
            local[r] = ("local", op_index, r.index)
    arg_signature = tuple(_type_str(a.type) for a in block.arguments)
    return (arg_signature, tuple(fingerprint))


class _CacheEntry:
    """One memoised region: its fingerprint (or None for non-straight-line
    regions) plus the size of its subtree — the regions and op entries the
    uncached formulation would re-hash on every request."""

    __slots__ = ("fingerprint", "subtree_regions", "subtree_entries")

    def __init__(
        self,
        fingerprint: Optional[Tuple],
        subtree_regions: int,
        subtree_entries: int,
    ):
        self.fingerprint = fingerprint
        self.subtree_regions = subtree_regions
        self.subtree_entries = subtree_entries


class RegionFingerprinter:
    """Memoised, bottom-up region fingerprints with precise invalidation.

    Fingerprints are cached per :class:`Region` *identity* and computed
    non-recursively over already-cached nested entries, so each region is
    hashed once no matter how deep the ``rgn.val`` nesting or how many times
    a block scan asks again.  Mutations must be reported through
    :meth:`invalidate`, which drops exactly the chain of regions enclosing
    the mutated op (nested siblings keep their memo).

    Counters (consumed by the pass statistics and the compile-time guard):

    * ``computed`` — regions actually hashed (cache misses),
    * ``entries_hashed`` — op entries built while hashing those regions
      (the unit of fingerprinting work: one tuple of interned keys per op),
    * ``hits`` — requests answered from the memo,
    * ``uncached_equivalent`` / ``uncached_entries`` — regions and op
      entries the *uncached* formulation would have hashed for the same
      request stream (each top-level request pays its whole subtree again),
    * ``invalidations`` — cache entries dropped by mutation notifications.
    """

    def __init__(self, numbering: Optional[ValueNumbering] = None):
        self.numbering = numbering if numbering is not None else ValueNumbering()
        self._cache: Dict[Region, _CacheEntry] = {}
        self.computed = 0
        self.entries_hashed = 0
        self.hits = 0
        self.uncached_equivalent = 0
        self.uncached_entries = 0
        self.invalidations = 0

    # -- queries -----------------------------------------------------------
    def fingerprint(self, region: Region) -> Optional[Tuple]:
        """Fingerprint of ``region`` (None if not straight-line), memoised."""
        entry = self._entry(region)
        self.uncached_equivalent += entry.subtree_regions
        self.uncached_entries += entry.subtree_entries
        return entry.fingerprint

    def _entry(self, region: Region) -> _CacheEntry:
        entry = self._cache.get(region)
        if entry is not None:
            self.hits += 1
            return entry
        entry = self._compute(region)
        self._cache[region] = entry
        return entry

    def _compute(self, region: Region) -> _CacheEntry:
        self.computed += 1
        if len(region.blocks) != 1:
            return _CacheEntry(None, 1, 0)
        numbering = self.numbering
        block = region.blocks[0]
        local: Dict[Value, Hashable] = {}
        for i, arg in enumerate(block.arguments):
            local[arg] = ("arg", i, _type_str(arg.type))
        subtree = 1
        entries = 0
        fingerprint = []
        for op_index, op in enumerate(block):
            nested = []
            for nested_region in op.regions:
                inner = self._entry(nested_region)
                subtree += inner.subtree_regions
                entries += inner.subtree_entries
                if inner.fingerprint is None:
                    return _CacheEntry(None, subtree, entries)
                nested.append(inner.fingerprint)
            operand_keys = []
            for value in op.operands:
                key = local.get(value)
                if key is None:
                    key = ("outer", numbering.number_of(value))
                operand_keys.append(key)
            fingerprint.append(
                (
                    op.name,
                    numbering.attribute_key(op),
                    tuple(operand_keys),
                    tuple(nested),
                    tuple(_type_str(r.type) for r in op.results),
                )
            )
            entries += 1
            self.entries_hashed += 1
            for r in op.results:
                local[r] = ("local", op_index, r.index)
        arg_signature = tuple(_type_str(a.type) for a in block.arguments)
        return _CacheEntry((arg_signature, tuple(fingerprint)), subtree, entries)

    # -- invalidation ------------------------------------------------------
    def invalidate(self, op: Operation) -> None:
        """Mutation notification: ``op`` changed (operands rewired, erased,
        inserted or its attributes edited).

        Drops the memo for every region on the chain enclosing ``op`` — each
        of their fingerprints embeds an entry derived from it — plus the
        op's cached attribute key.  Regions *nested inside* ``op`` and
        sibling regions are untouched; their fingerprints cannot have
        changed.
        """
        self.numbering.drop_attribute_key(op)
        region = op.parent_region()
        while region is not None:
            if self._cache.pop(region, None) is not None:
                self.invalidations += 1
            parent = region.parent
            region = parent.parent_region() if parent is not None else None


@register_pass
class RegionGVNPass(FunctionPass):
    """Merge ``rgn.val`` operations whose regions have equal value numbers.

    Only values defined in the same block are merged (the earlier definition
    trivially dominates the later one), which covers the pattern produced by
    the lp → rgn lowering where all arms of one case statement become
    adjacent ``rgn.val`` definitions.

    Fingerprints come from a per-function :class:`RegionFingerprinter`; a
    merge notifies it about every op it touches (the users rewired by the
    replacement and the chain enclosing the erased definition), so the memo
    stays exact while everything untouched keeps its hash.
    """

    name = "region-gvn"

    def run_on_function(self, func) -> None:
        merged = 0
        fingerprinter = RegionFingerprinter()
        for block in self._all_blocks(func):
            merged += self._run_on_block(block, fingerprinter)
        self.statistics.bump("regions-merged", merged)
        self.statistics.bump_meter("fingerprints-computed", fingerprinter.computed)
        self.statistics.bump_meter("fingerprint-cache-hits", fingerprinter.hits)
        self.statistics.bump_meter(
            "fingerprint-entries-hashed", fingerprinter.entries_hashed
        )
        self.statistics.bump_meter(
            "fingerprints-uncached-equivalent", fingerprinter.uncached_equivalent
        )
        self.statistics.bump_meter(
            "fingerprint-entries-uncached", fingerprinter.uncached_entries
        )
        self.statistics.bump_meter(
            "fingerprint-invalidations", fingerprinter.invalidations
        )

    def _all_blocks(self, func):
        blocks = []
        for op in func.walk():
            for region in op.regions:
                blocks.extend(region.blocks)
        return blocks

    def _run_on_block(
        self, block: Block, fingerprinter: RegionFingerprinter
    ) -> int:
        seen: Dict[Tuple, Operation] = {}
        merged = 0
        # Block iteration captures the next link before yielding, so erasing
        # the current op (the only mutation below) is safe without a copy.
        for op in block:
            if not isinstance(op, ValOp):
                continue
            self.statistics.bump_meter("regions-scanned")
            fingerprint = fingerprinter.fingerprint(op.body_region)
            if fingerprint is None:
                continue
            existing = seen.get(fingerprint)
            if existing is None:
                seen[fingerprint] = op
                continue
            # The users' operands are about to be rewired and the enclosing
            # chain loses this definition: notify before mutating, while the
            # ancestor links are still intact.
            for result in op.results:
                for user in result.users():
                    fingerprinter.invalidate(user)
            fingerprinter.invalidate(op)
            op.replace_all_uses_with(existing)
            op.erase()
            merged += 1
        return merged
