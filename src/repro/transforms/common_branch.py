"""Common branch elimination (Figure 1 C).

``case x of True -> e | False -> e`` computes ``e`` regardless of ``x``.
After region GVN has merged the structurally identical branch regions into a
single ``rgn.val``, the selection operation chooses between identical values
and folds away:

* ``arith.select %c, %a, %a`` → ``%a``
* ``rgn.switch %flag`` whose case and default operands are all the same
  region value → that region value
"""

from __future__ import annotations

from typing import List

from ..dialects import arith, rgn
from ..ir.core import Operation
from ..rewrite.driver import PatternRewritePass
from ..rewrite.registry import register_pass
from ..rewrite.pattern import PatternRewriter, RewritePattern


class FoldSelectSameOperands(RewritePattern):
    """``select %c, %a, %a`` → ``%a`` (works for any type, incl. regions)."""

    op_name = arith.SelectOp.OP_NAME
    num_operands = 3

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if op.operands[1] is not op.operands[2]:
            return False
        rewriter.replace_op(op, [op.operands[1]])
        return True


class FoldSwitchSameOperands(RewritePattern):
    """``rgn.switch`` whose every outcome is the same region → that region."""

    op_name = rgn.SwitchOp.OP_NAME
    # A rgn.switch carries [flag, default_region, case_regions...].
    min_num_operands = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, rgn.SwitchOp):
            return False
        outcomes = [op.default_region, *op.case_regions]
        first = outcomes[0]
        if any(o is not first for o in outcomes[1:]):
            return False
        rewriter.replace_op(op, [first])
        return True


def common_branch_patterns() -> List[RewritePattern]:
    return [FoldSelectSameOperands(), FoldSwitchSameOperands()]


@register_pass
class CommonBranchEliminationPass(PatternRewritePass):
    """Greedily apply the common-branch-elimination patterns."""

    name = "common-branch-elimination"

    def patterns(self) -> List[RewritePattern]:
        return common_branch_patterns()
