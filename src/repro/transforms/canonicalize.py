"""Canonicalisation: the union of all local simplification patterns.

Mirrors MLIR's ``-canonicalize``: constant folding, case elimination (with
the case-of-known-constructor fold), common-branch elimination and dead
region elimination are bundled into **one** greedy fixpoint — a single
pattern *drain* seeded once per function — instead of one fixpoint per
pattern family.  The rgn optimisation pipeline
(:func:`repro.backend.pipeline.rgn_optimization_pipeline`) drives this drain
with the worklist engine, so an op is queued once and every follow-up match
comes from rewriter notifications rather than a re-seed per pass.

The individual passes (:class:`~repro.transforms.constant_fold.
ConstantFoldPass` etc.) remain available for targeted use and for the
ablation benchmarks, which shrink the drain's pattern set instead of
removing pipeline stages.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..rewrite.driver import ENGINE_OPTION, PatternRewritePass
from ..rewrite.pattern import RewritePattern
from ..rewrite.registry import PassOption, register_pass
from .case_elimination import case_elimination_patterns
from .common_branch import common_branch_patterns
from .constant_fold import constant_fold_patterns
from .dce import eliminate_dead_code
from .dead_region import dead_region_patterns


def canonicalization_patterns(
    *,
    constant_fold: bool = True,
    case_elimination: bool = True,
    common_branch: bool = True,
    dead_region: bool = True,
) -> List[RewritePattern]:
    """The canonicalisation pattern union, per family.

    This is the single source of truth for what "canonicalisation" means;
    the backend pipeline maps its ablation flags onto the keyword toggles.
    """
    patterns: List[RewritePattern] = []
    if constant_fold:
        patterns.extend(constant_fold_patterns())
    if case_elimination:
        patterns.extend(case_elimination_patterns())
    if common_branch:
        patterns.extend(common_branch_patterns())
    if dead_region:
        patterns.extend(dead_region_patterns())
    return patterns


#: Ablation choice -> the keyword toggle of :func:`canonicalization_patterns`
#: it switches off.  Also consumed by the backend pipeline when translating
#: its ablation flags into a pipeline spec.
ABLATABLE_FAMILIES = {
    "constant-fold": "constant_fold",
    "case-elim": "case_elimination",
    "common-branch": "common_branch",
    "dead-region": "dead_region",
}


@register_pass
class CanonicalizePass(PatternRewritePass):
    """Drive the canonicalisation drain to fixpoint, optionally followed by
    DCE.

    ``patterns`` narrows the drain to a subset (the ablation benchmarks pass
    the enabled pattern families); by default every registered
    canonicalisation pattern participates.  ``run_dce`` controls the
    trailing dead-code sweep — the backend pipeline disables it because it
    schedules one final DCE pass itself.
    """

    name = "canonicalize"

    SPEC_OPTIONS = (
        PassOption(
            "ablate",
            "drop one pattern family from the drain",
            repeatable=True,
            choices=tuple(ABLATABLE_FAMILIES),
        ),
        ENGINE_OPTION,
        PassOption(
            "dce",
            "run a dead-code sweep after the drain converges",
            choices=("true", "false"),
            default="false",
        ),
    )

    @classmethod
    def from_spec_options(cls, options):
        toggles = {
            ABLATABLE_FAMILIES[choice]: False
            for choice in options.get("ablate", ())
        }
        patterns = canonicalization_patterns(**toggles) if toggles else None
        return cls(
            patterns,
            engine=options.get("engine", [None])[-1],
            run_dce=options.get("dce", ["false"])[-1] == "true",
        )

    def __init__(
        self,
        patterns: Optional[Sequence[RewritePattern]] = None,
        *,
        engine: Optional[str] = None,
        run_dce: bool = True,
    ):
        super().__init__(engine=engine)
        self._patterns = list(patterns) if patterns is not None else None
        self.run_dce = run_dce

    def patterns(self) -> List[RewritePattern]:
        if self._patterns is not None:
            return list(self._patterns)
        return canonicalization_patterns()

    def run_on_function(self, func) -> None:
        self.apply(func)
        if self.run_dce:
            erased = eliminate_dead_code(func)
            self.statistics.bump("ops-erased", erased)
