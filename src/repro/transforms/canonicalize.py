"""Canonicalisation: the union of all local simplification patterns.

Mirrors MLIR's ``-canonicalize``: constant folding, case elimination and
common-branch elimination are bundled into one greedy fixpoint, followed by
dead code elimination.  The individual passes remain available for the
ablation benchmarks.
"""

from __future__ import annotations

from typing import List

from ..rewrite.driver import PatternRewritePass
from ..rewrite.pattern import RewritePattern
from .case_elimination import case_elimination_patterns
from .common_branch import common_branch_patterns
from .constant_fold import constant_fold_patterns
from .dce import eliminate_dead_code
from .dead_region import dead_region_patterns


def canonicalization_patterns() -> List[RewritePattern]:
    """All registered canonicalisation patterns."""
    return [
        *constant_fold_patterns(),
        *case_elimination_patterns(),
        *common_branch_patterns(),
        *dead_region_patterns(),
    ]


class CanonicalizePass(PatternRewritePass):
    """Apply every canonicalisation pattern to fixpoint, then run DCE."""

    name = "canonicalize"

    def patterns(self) -> List[RewritePattern]:
        return canonicalization_patterns()

    def run_on_function(self, func) -> None:
        self.apply(func)
        erased = eliminate_dead_code(func)
        self.statistics.bump("ops-erased", erased)
