"""Constant folding patterns for the arith dialect.

The baseline LEAN backend hand-writes constant folding; in the MLIR-style
pipeline it is just another set of rewrite patterns (Figure 11).
"""

from __future__ import annotations

from typing import List

from ..dialects import arith
from ..ir.core import Operation
from ..rewrite.driver import PatternRewritePass
from ..rewrite.registry import register_pass
from ..rewrite.pattern import PatternRewriter, RewritePattern


def _constant_value(value) -> "int | None":
    op = value.owner_op()
    if isinstance(op, arith.ConstantOp):
        return op.value
    return None


class FoldBinaryOp(RewritePattern):
    """``addi/subi/muli/divsi/remsi/andi/ori/xori`` of two constants."""

    benefit = 2
    num_operands = 2

    _FOLDABLE = frozenset({
        arith.AddIOp.OP_NAME,
        arith.SubIOp.OP_NAME,
        arith.MulIOp.OP_NAME,
        arith.DivSIOp.OP_NAME,
        arith.RemSIOp.OP_NAME,
        arith.AndIOp.OP_NAME,
        arith.OrIOp.OP_NAME,
        arith.XorIOp.OP_NAME,
    })
    op_names = _FOLDABLE

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name not in self._FOLDABLE or len(op.operands) != 2:
            return False
        lhs = _constant_value(op.operands[0])
        rhs = _constant_value(op.operands[1])
        if lhs is None or rhs is None:
            return False
        if op.name in (arith.DivSIOp.OP_NAME, arith.RemSIOp.OP_NAME) and rhs == 0:
            return False
        folded = arith.evaluate_binary(op.name, lhs, rhs)
        constant = rewriter.create(arith.ConstantOp, folded, op.results[0].type)
        rewriter.replace_op(op, constant.results)
        return True


class FoldAddZero(RewritePattern):
    """``x + 0`` → ``x`` and ``0 + x`` → ``x`` (likewise ``x - 0``, ``x * 1``)."""

    op_names = frozenset({
        arith.AddIOp.OP_NAME,
        arith.SubIOp.OP_NAME,
        arith.MulIOp.OP_NAME,
    })
    num_operands = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name == arith.AddIOp.OP_NAME:
            if _constant_value(op.operands[1]) == 0:
                rewriter.replace_op(op, [op.operands[0]])
                return True
            if _constant_value(op.operands[0]) == 0:
                rewriter.replace_op(op, [op.operands[1]])
                return True
        if op.name == arith.SubIOp.OP_NAME and _constant_value(op.operands[1]) == 0:
            rewriter.replace_op(op, [op.operands[0]])
            return True
        if op.name == arith.MulIOp.OP_NAME:
            if _constant_value(op.operands[1]) == 1:
                rewriter.replace_op(op, [op.operands[0]])
                return True
            if _constant_value(op.operands[0]) == 1:
                rewriter.replace_op(op, [op.operands[1]])
                return True
        return False


class FoldCmpI(RewritePattern):
    """``arith.cmpi`` of two constants folds to an ``i1`` constant."""

    op_name = arith.CmpIOp.OP_NAME
    num_operands = 2
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        lhs = _constant_value(op.operands[0])
        rhs = _constant_value(op.operands[1])
        if lhs is None or rhs is None:
            return False
        folded = arith.evaluate_cmpi(op.attributes["predicate"].value, lhs, rhs)
        from ..ir.types import i1

        constant = rewriter.create(arith.ConstantOp, folded, i1)
        rewriter.replace_op(op, constant.results)
        return True


def constant_fold_patterns() -> List[RewritePattern]:
    """The full set of constant-folding patterns."""
    return [FoldBinaryOp(), FoldAddZero(), FoldCmpI()]


@register_pass
class ConstantFoldPass(PatternRewritePass):
    """Greedily apply the constant-folding patterns."""

    name = "constant-fold"

    def patterns(self) -> List[RewritePattern]:
        return constant_fold_patterns()
