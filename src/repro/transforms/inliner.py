"""A simple function inliner.

The paper relies on MLIR's builtin inliner (Figure 11).  We provide a
conservative analogue: direct ``func.call`` sites whose callee

* is defined in the same module,
* is not (mutually) recursive with the caller,
* has a single-block body ending in ``func.return`` or ``lp.return``, and
* is small (at most ``max_callee_ops`` operations)

are replaced by a clone of the callee body with arguments substituted.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..dialects.builtin import ModuleOp
from ..dialects.func import CallOp, FuncOp, ReturnOp
from ..dialects.lp import ReturnOp as LpReturnOp
from ..ir.core import IRMapping, Operation
from ..rewrite.pass_manager import ModulePass
from ..rewrite.registry import PassOption, register_pass


@register_pass
class InlinerPass(ModulePass):
    """Inline small, non-recursive, single-block callees at direct call sites."""

    name = "inline"

    SPEC_OPTIONS = (
        PassOption(
            "max-callee-ops",
            "largest callee body (in operations) considered for inlining",
            default="16",
        ),
    )

    @classmethod
    def from_spec_options(cls, options):
        raw = options.get("max-callee-ops", ["16"])[-1]
        try:
            limit = int(raw)
        except ValueError:
            raise ValueError(f"max-callee-ops={raw!r} is not an integer")
        return cls(max_callee_ops=limit)

    def __init__(self, max_callee_ops: int = 16):
        super().__init__()
        self.max_callee_ops = max_callee_ops

    # -- call graph -----------------------------------------------------------
    def _direct_callees(self, func: FuncOp) -> Set[str]:
        return {
            op.callee for op in func.walk() if isinstance(op, CallOp)
        }

    def _reachable(self, start: str, callees: Dict[str, Set[str]]) -> Set[str]:
        seen: Set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(callees.get(current, ()))
        return seen

    def _is_inlinable(self, callee: FuncOp) -> bool:
        if callee.is_declaration:
            return False
        if len(callee.body.blocks) != 1:
            return False
        block = callee.body.blocks[0]
        if len(block) > self.max_callee_ops:
            return False
        terminator = block.terminator
        return isinstance(terminator, (ReturnOp, LpReturnOp))

    # -- inlining -----------------------------------------------------------------
    def _inline_call(self, call: CallOp, callee: FuncOp) -> None:
        block = callee.body.blocks[0]
        mapping = IRMapping()
        for formal, actual in zip(block.arguments, call.operands):
            mapping.map_value(formal, actual)
        returned = None
        insert_block = call.parent
        for op in block:
            if isinstance(op, (ReturnOp, LpReturnOp)):
                returned = [mapping.lookup(v) for v in op.operands]
                break
            cloned = op.clone(mapping)
            insert_block.insert_before(cloned, call)
        if returned is None:
            returned = []
        call.replace_all_uses_with(returned)
        call.erase()
        self.statistics.bump("calls-inlined")

    def run(self, module: Operation) -> None:
        if not isinstance(module, ModuleOp):
            return
        functions: Dict[str, FuncOp] = {
            f.sym_name: f for f in module.functions()
        }
        callees = {name: self._direct_callees(f) for name, f in functions.items()}
        for caller_name, caller in functions.items():
            for op in list(caller.walk()):
                if not isinstance(op, CallOp):
                    continue
                callee = functions.get(op.callee)
                if callee is None or not self._is_inlinable(callee):
                    continue
                # Refuse recursion: the callee must not reach the caller or
                # itself through direct calls.
                reachable = self._reachable(callee.sym_name, callees)
                if caller_name in reachable or callee.sym_name in callees.get(
                    callee.sym_name, set()
                ):
                    continue
                if op.parent is None:
                    continue
                self._inline_call(op, callee)
