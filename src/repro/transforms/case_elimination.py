"""Case elimination (Figure 1 B / §IV-B.1 example).

A case statement whose scrutinee is a known constant can be replaced by the
selected branch.  In the rgn encoding, a case statement is a ``select`` /
``rgn.switch`` over region values followed by ``rgn.run``; the optimisation
decomposes into ordinary SSA rewrites:

* ``arith.select`` with a constant condition folds to one of its operands,
* ``rgn.switch`` with a constant flag folds to the matching case region,
* ``rgn.run`` of a single-use, directly-known ``rgn.val`` is replaced by the
  region body itself (the final step D in the paper's illustration).
"""

from __future__ import annotations

from typing import List

from ..dialects import arith, rgn
from ..ir.core import IRMapping, Operation
from ..rewrite.driver import PatternRewritePass
from ..rewrite.pattern import PatternRewriter, RewritePattern


def _constant_value(value) -> "int | None":
    op = value.owner_op()
    if isinstance(op, arith.ConstantOp):
        return op.value
    return None


class FoldSelectOfConstant(RewritePattern):
    """``select true, %a, %b`` → ``%a`` (and ``false`` → ``%b``)."""

    op_name = arith.SelectOp.OP_NAME
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        condition = _constant_value(op.operands[0])
        if condition is None:
            return False
        chosen = op.operands[1] if condition else op.operands[2]
        rewriter.replace_op(op, [chosen])
        return True


class FoldSwitchOfConstant(RewritePattern):
    """``rgn.switch`` on a constant flag → the matching region operand."""

    op_name = rgn.SwitchOp.OP_NAME
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, rgn.SwitchOp):
            return False
        flag = _constant_value(op.flag)
        if flag is None:
            return False
        rewriter.replace_op(op, [op.region_for_value(flag)])
        return True


class InlineRunOfKnownRegion(RewritePattern):
    """``rgn.run`` of a directly known, single-use ``rgn.val`` inlines the
    region body at the run site (substituting the run arguments for the
    region's block arguments).

    Multi-use regions are intentionally left alone: keeping them shared is
    exactly the code-size benefit join points provide; the rgn → CFG lowering
    turns the remaining runs into branches to a shared block.
    """

    op_name = rgn.RunOp.OP_NAME

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, rgn.RunOp):
            return False
        region_def = op.region_value.owner_op()
        if not isinstance(region_def, rgn.ValOp):
            return False
        if op.region_value.num_uses != 1:
            return False
        body = region_def.body_block
        args = op.args
        if len(body.arguments) != len(args):
            return False
        mapping = IRMapping()
        for block_arg, actual in zip(body.arguments, args):
            mapping.map_value(block_arg, actual)
        insert_block = op.parent
        for body_op in body.operations:
            cloned = body_op.clone(mapping)
            insert_block.insert_before(cloned, op)
            rewriter.notify_op_inserted(cloned)
        rewriter.erase_op(op)
        # The rgn.val is now unused; let DCE remove it (or remove it eagerly
        # if it became completely unused).
        if not region_def.results_used():
            rewriter.erase_op(region_def)
        return True


def case_elimination_patterns() -> List[RewritePattern]:
    return [
        FoldSelectOfConstant(),
        FoldSwitchOfConstant(),
        InlineRunOfKnownRegion(),
    ]


class CaseEliminationPass(PatternRewritePass):
    """Greedily apply the case-elimination patterns."""

    name = "case-elimination"

    def patterns(self) -> List[RewritePattern]:
        return case_elimination_patterns()
