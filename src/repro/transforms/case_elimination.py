"""Case elimination (Figure 1 B / §IV-B.1 example).

A case statement whose scrutinee is a known constant can be replaced by the
selected branch.  In the rgn encoding, a case statement is a ``select`` /
``rgn.switch`` over region values followed by ``rgn.run``; the optimisation
decomposes into ordinary SSA rewrites:

* ``lp.getlabel`` of a directly constructed value (``lp.construct`` /
  ``lp.reuse``) folds to the constructor's tag constant — the
  *case-of-known-constructor* entry point that turns a match on a freshly
  built value into the constant dispatch the following patterns consume,
* ``arith.select`` with a constant condition folds to one of its operands,
* ``rgn.switch`` with a constant flag folds to the matching case region,
* ``rgn.run`` of a single-use, directly-known ``rgn.val`` is replaced by the
  region body itself (the final step D in the paper's illustration).
"""

from __future__ import annotations

from typing import List

from ..dialects import arith, lp, rgn
from ..ir.core import IRMapping, Operation
from ..rewrite.driver import PatternRewritePass
from ..rewrite.registry import register_pass
from ..rewrite.pattern import PatternRewriter, RewritePattern


def _constant_value(value) -> "int | None":
    op = value.owner_op()
    if isinstance(op, arith.ConstantOp):
        return op.value
    return None


class FoldGetLabelOfKnownConstructor(RewritePattern):
    """``lp.getlabel`` of a direct ``lp.construct``/``lp.reuse`` → the tag.

    Case-of-known-constructor: a value built and immediately scrutinised in
    the same function (common after join-point inlining and the λrc → lp
    lowering of nested matches) has a statically known tag, so the label read
    folds to an ``i8`` constant.  The constant then feeds the select /
    ``rgn.switch`` folds above, which is what moves real programs onto the
    worklist engine's notification-driven path.
    """

    op_name = lp.GetLabelOp.OP_NAME
    num_operands = 1
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        producer = op.operands[0].owner_op()
        if isinstance(producer, (lp.ConstructOp, lp.ReuseOp)):
            tag = producer.tag
        else:
            return False
        constant = rewriter.create(arith.ConstantOp, tag, op.results[0].type)
        rewriter.replace_op(op, constant.results)
        return True


class FoldSelectOfConstant(RewritePattern):
    """``select true, %a, %b`` → ``%a`` (and ``false`` → ``%b``)."""

    op_name = arith.SelectOp.OP_NAME
    num_operands = 3
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        condition = _constant_value(op.operands[0])
        if condition is None:
            return False
        chosen = op.operands[1] if condition else op.operands[2]
        rewriter.replace_op(op, [chosen])
        return True


class FoldSwitchOfConstant(RewritePattern):
    """``rgn.switch`` on a constant flag → the matching region operand."""

    op_name = rgn.SwitchOp.OP_NAME
    # A rgn.switch carries [flag, default_region, case_regions...].
    min_num_operands = 2
    benefit = 2

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, rgn.SwitchOp):
            return False
        flag = _constant_value(op.flag)
        if flag is None:
            return False
        rewriter.replace_op(op, [op.region_for_value(flag)])
        return True


class InlineRunOfKnownRegion(RewritePattern):
    """``rgn.run`` of a directly known, single-use ``rgn.val`` inlines the
    region body at the run site (substituting the run arguments for the
    region's block arguments).

    Multi-use regions are intentionally left alone: keeping them shared is
    exactly the code-size benefit join points provide; the rgn → CFG lowering
    turns the remaining runs into branches to a shared block.
    """

    op_name = rgn.RunOp.OP_NAME
    # A rgn.run carries [region_value, args...].
    min_num_operands = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, rgn.RunOp):
            return False
        region_def = op.region_value.owner_op()
        if not isinstance(region_def, rgn.ValOp):
            return False
        if op.region_value.num_uses != 1:
            return False
        body = region_def.body_block
        args = op.args
        if len(body.arguments) != len(args):
            return False
        mapping = IRMapping()
        for block_arg, actual in zip(body.arguments, args):
            mapping.map_value(block_arg, actual)
        insert_block = op.parent
        actuals = set(args)
        for body_op in body:
            cloned = body_op.clone(mapping)
            insert_block.insert_before(cloned, op)
            # The region body was already driven to fixpoint in place, so a
            # clone of it can only *newly* match where the argument
            # substitution changed an op's context: notify the top-level op
            # (it moved into a new block) and every cloned op consuming one
            # of the run arguments, instead of requeueing the whole subtree.
            rewriter.notify_op_modified(cloned)
            if actuals:
                for sub in cloned.walk():
                    if any(operand in actuals for operand in sub.operands):
                        rewriter.notify_op_modified(sub)
        rewriter.erase_op(op)
        # The rgn.val is now unused; let DCE remove it (or remove it eagerly
        # if it became completely unused).
        if not region_def.results_used():
            rewriter.erase_op(region_def)
        return True


def case_elimination_patterns() -> List[RewritePattern]:
    return [
        FoldGetLabelOfKnownConstructor(),
        FoldSelectOfConstant(),
        FoldSwitchOfConstant(),
        InlineRunOfKnownRegion(),
    ]


@register_pass
class CaseEliminationPass(PatternRewritePass):
    """Greedily apply the case-elimination patterns."""

    name = "case-elimination"

    def patterns(self) -> List[RewritePattern]:
        return case_elimination_patterns()
