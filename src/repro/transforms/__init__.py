"""IR transformation passes.

Classical SSA passes
    * :class:`~repro.transforms.dce.DeadCodeEliminationPass`
    * :class:`~repro.transforms.cse.CSEPass`
    * :class:`~repro.transforms.constant_fold.ConstantFoldPass`
    * :class:`~repro.transforms.canonicalize.CanonicalizePass`
    * :class:`~repro.transforms.inliner.InlinerPass`

Region passes (the paper's contribution, §IV-B)
    * :class:`~repro.transforms.dead_region.DeadRegionEliminationPass`
    * :class:`~repro.transforms.region_gvn.RegionGVNPass`
    * :class:`~repro.transforms.case_elimination.CaseEliminationPass`
    * :class:`~repro.transforms.common_branch.CommonBranchEliminationPass`
"""

from .canonicalize import CanonicalizePass, canonicalization_patterns
from .case_elimination import CaseEliminationPass, case_elimination_patterns
from .common_branch import CommonBranchEliminationPass, common_branch_patterns
from .constant_fold import ConstantFoldPass, constant_fold_patterns
from .cse import CSEPass
from .dce import DeadCodeEliminationPass, eliminate_dead_code
from .dead_region import DeadRegionEliminationPass
from .inliner import InlinerPass
from .region_gvn import (
    RegionFingerprinter,
    RegionGVNPass,
    ValueNumbering,
    region_value_number,
)

__all__ = [
    "CanonicalizePass",
    "canonicalization_patterns",
    "CaseEliminationPass",
    "case_elimination_patterns",
    "CommonBranchEliminationPass",
    "common_branch_patterns",
    "ConstantFoldPass",
    "constant_fold_patterns",
    "CSEPass",
    "DeadCodeEliminationPass",
    "eliminate_dead_code",
    "DeadRegionEliminationPass",
    "InlinerPass",
    "RegionFingerprinter",
    "RegionGVNPass",
    "ValueNumbering",
    "region_value_number",
]
