"""Common subexpression elimination for region-free pure operations.

The classic SSA CSE: two pure operations with identical name, attributes and
operands compute the same value, so later occurrences can reuse the earlier
result (provided the earlier one dominates the later one).  Operations with
nested regions are left to :mod:`repro.transforms.region_gvn`, which extends
value numbering to regions (the paper's §IV-B.2).

Scoping follows the dominance structure of nested regions instead of
re-walking: the pass makes **one** traversal of the function, pushing a new
hash scope per block and chaining it to the scope active at the operation
that owns the block's region.  Everything recorded in an enclosing scope was
defined *before* the region-owning operation in a block that encloses the
nested block — exactly the definitions that dominate it — so a lookup walks
the scope chain and reuse extends across region boundaries for free.
Sibling blocks of one region never share a scope (neither dominates the
other).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir.core import Block, Operation, Value
from ..ir.traits import Allocates, Pure
from ..rewrite.pass_manager import FunctionPass
from ..rewrite.registry import register_pass


def _op_key(op: Operation, value_ids: Dict[Value, int]) -> Tuple:
    """Structural key of a region-free pure operation."""
    return (
        op.name,
        tuple(value_ids.setdefault(v, len(value_ids)) for v in op.operands),
        tuple(sorted((k, str(v)) for k, v in op.attributes.items())),
        tuple(str(r.type) for r in op.results),
    )


class _Scope:
    """One block's expression table, chained to the dominating scopes."""

    __slots__ = ("table", "parent")

    def __init__(self, parent: Optional["_Scope"] = None):
        self.table: Dict[Tuple, Operation] = {}
        self.parent = parent

    def lookup(self, key: Tuple) -> Tuple[Optional[Operation], bool]:
        """Find ``key`` in this scope or a dominating one.

        Returns ``(operation, from_outer_scope)``.
        """
        existing = self.table.get(key)
        if existing is not None:
            return existing, False
        scope = self.parent
        while scope is not None:
            existing = scope.table.get(key)
            if existing is not None:
                return existing, True
            scope = scope.parent
        return None, False


@register_pass
class CSEPass(FunctionPass):
    """Eliminate redundant pure, region-free operations (dominance-scoped)."""

    name = "cse"

    def run_on_function(self, func) -> None:
        value_ids: Dict[Value, int] = {}
        erased = 0
        outer_hits = 0
        for region in func.regions:
            for block in region.blocks:
                block_erased, block_outer = self._process_block(
                    block, _Scope(), value_ids
                )
                erased += block_erased
                outer_hits += block_outer
        self.statistics.bump("ops-erased", erased)
        if outer_hits:
            self.statistics.bump_meter("outer-scope-hits", outer_hits)

    def _process_block(
        self,
        block: Block,
        scope: _Scope,
        value_ids: Dict[Value, int],
    ) -> Tuple[int, int]:
        erased = 0
        outer_hits = 0
        self.statistics.bump_meter("ops-scanned", len(block))
        # Safe without a snapshot: the only mutation is erasing the current
        # op, and block iteration captures the next link before yielding.
        for op in block:
            if op.regions:
                # Blocks of a nested region are dominated by everything
                # recorded so far in this block and its enclosing scopes
                # (the region-owning op comes after those definitions);
                # siblings in the same region get independent child scopes.
                for region in op.regions:
                    for nested in region.blocks:
                        nested_erased, nested_outer = self._process_block(
                            nested, _Scope(scope), value_ids
                        )
                        erased += nested_erased
                        outer_hits += nested_outer
                continue
            if not op.has_trait(Pure) or not op.results:
                continue
            if op.has_trait(Allocates):
                # Merging two allocations would alias two owned references
                # onto one heap object and unbalance the reference counts.
                continue
            key = _op_key(op, value_ids)
            existing, from_outer = scope.lookup(key)
            if existing is None:
                scope.table[key] = op
                continue
            op.replace_all_uses_with(existing)
            op.erase()
            erased += 1
            if from_outer:
                outer_hits += 1
        return erased, outer_hits
