"""Common subexpression elimination for region-free pure operations.

The classic SSA CSE: two pure operations with identical name, attributes and
operands compute the same value, so later occurrences can reuse the earlier
result (provided the earlier one dominates the later one).  Operations with
nested regions are left to :mod:`repro.transforms.region_gvn`, which extends
value numbering to regions (the paper's §IV-B.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.core import Block, Operation, Value
from ..ir.dominance import DominanceAnalysis
from ..ir.traits import Allocates, Pure
from ..rewrite.pass_manager import FunctionPass


def _op_key(op: Operation, value_ids: Dict[Value, int]) -> Tuple:
    """Structural key of a region-free pure operation."""
    return (
        op.name,
        tuple(value_ids.setdefault(v, len(value_ids)) for v in op.operands),
        tuple(sorted((k, str(v)) for k, v in op.attributes.items())),
        tuple(str(r.type) for r in op.results),
    )


class CSEPass(FunctionPass):
    """Eliminate redundant pure, region-free operations."""

    name = "cse"

    def run_on_function(self, func) -> None:
        value_ids: Dict[Value, int] = {}
        erased = 0
        # Process every block; a simple scoped approach: expressions computed
        # in a block are only reused within that block or blocks it
        # dominates.  We conservatively restrict reuse to the same block and
        # to values defined in enclosing regions (which always dominate).
        dominance = DominanceAnalysis()
        for block in self._blocks_in_order(func):
            erased += self._run_on_block(block, value_ids, dominance)
        self.statistics.bump("ops-erased", erased)

    def _blocks_in_order(self, func) -> List[Block]:
        blocks: List[Block] = []
        for op in func.walk():
            for region in op.regions:
                blocks.extend(region.blocks)
        return blocks

    def _run_on_block(
        self,
        block: Block,
        value_ids: Dict[Value, int],
        dominance: DominanceAnalysis,
    ) -> int:
        seen: Dict[Tuple, Operation] = {}
        erased = 0
        self.statistics.bump_meter("ops-scanned", len(block))
        # Safe without a snapshot: the only mutation is erasing the current
        # op, and block iteration captures the next link before yielding.
        for op in block:
            if not op.has_trait(Pure) or op.regions or not op.results:
                continue
            if op.has_trait(Allocates):
                # Merging two allocations would alias two owned references
                # onto one heap object and unbalance the reference counts.
                continue
            key = _op_key(op, value_ids)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
                continue
            op.replace_all_uses_with(existing)
            op.erase()
            erased += 1
        return erased
