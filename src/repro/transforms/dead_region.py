"""Dead region elimination (Figure 1 A / §IV-B.1).

Dead *expression* elimination in a functional compiler removes let bindings
whose bound expression is never referenced.  In the rgn encoding a
let-bound sub-expression is a ``rgn.val``; if its SSA result has no uses it
is never run, hence dead.  This is exactly SSA dead code elimination
restricted to region values — which is why the pass is a thin wrapper around
:func:`repro.transforms.dce.eliminate_dead_code`.

The pass exists separately from the generic DCE so that the ablation
benchmarks can toggle it on its own.
"""

from __future__ import annotations

from ..dialects.rgn import ValOp
from ..rewrite.pass_manager import FunctionPass
from .dce import eliminate_dead_code


class DeadRegionEliminationPass(FunctionPass):
    """Remove ``rgn.val`` definitions whose result is never referenced."""

    name = "dead-region-elimination"

    def run_on_function(self, func) -> None:
        erased = eliminate_dead_code(
            func, is_removable=lambda op: isinstance(op, ValOp)
        )
        self.statistics.bump("regions-erased", erased)
