"""Dead region elimination (Figure 1 A / §IV-B.1).

Dead *expression* elimination in a functional compiler removes let bindings
whose bound expression is never referenced.  In the rgn encoding a
let-bound sub-expression is a ``rgn.val``; if its SSA result has no uses it
is never run, hence dead.  This is exactly SSA dead code elimination
restricted to region values — which is why the pass is a thin wrapper around
:func:`repro.transforms.dce.eliminate_dead_code`.

The pass exists separately from the generic DCE so that the ablation
benchmarks can toggle it on its own.
"""

from __future__ import annotations

from typing import List

from ..dialects.rgn import ValOp
from ..ir.core import Operation
from ..rewrite.pass_manager import FunctionPass
from ..rewrite.registry import register_pass
from ..rewrite.pattern import PatternRewriter, RewritePattern
from .dce import eliminate_dead_code


class EraseDeadRegionValue(RewritePattern):
    """A ``rgn.val`` whose result is never referenced is never run — erase it.

    This is dead region elimination expressed as a rewrite pattern (so the
    canonicalisation fixpoint can interleave it with folding).  Erasing one
    region value releases every use its body held, which is what lets whole
    towers of transitively dead join points collapse: the body of a dead
    region often holds the only ``rgn.run`` of an earlier region value, so
    its erasure makes that earlier value dead in turn.  The worklist driver
    learns this through the erase notifications; the rescan driver needs one
    extra full sweep per nesting level.
    """

    op_name = ValOp.OP_NAME
    num_operands = 0

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        if not isinstance(op, ValOp) or op.results_used():
            return False
        rewriter.erase_op(op)
        return True


def dead_region_patterns() -> List[RewritePattern]:
    return [EraseDeadRegionValue()]


@register_pass
class DeadRegionEliminationPass(FunctionPass):
    """Remove ``rgn.val`` definitions whose result is never referenced."""

    name = "dead-region-elimination"

    def run_on_function(self, func) -> None:
        erased = eliminate_dead_code(
            func, is_removable=lambda op: isinstance(op, ValOp)
        )
        self.statistics.bump("regions-erased", erased)
